"""Full accelerator: sw/hw equivalence, latency, energy, configuration."""

import numpy as np
import pytest

from repro.core.mfdfp import MFDFPNetwork
from repro.hw.accelerator import PIPELINE_DEPTH, Accelerator, AcceleratorConfig, execute_deployed
from repro.nn import AvgPool2D, Conv2D, Dense, Flatten, MaxPool2D, Network, ReLU
from repro.zoo import cifar10_full, cifar10_small


def maxpool_net(dtype=np.float64, seed=0):
    """conv/relu/maxpool/dense network: exactly representable end to end."""
    rng = np.random.default_rng(seed)
    return Network(
        [
            Conv2D(2, 8, 3, pad=1, dtype=dtype, rng=rng, name="conv1"),
            ReLU(name="relu1"),
            MaxPool2D(2, stride=2, name="pool1"),
            Conv2D(8, 8, 3, pad=1, dtype=dtype, rng=rng, name="conv2"),
            ReLU(name="relu2"),
            Flatten(name="flat"),
            Dense(8 * 4 * 4, 5, dtype=dtype, rng=rng, name="fc"),
        ],
        input_shape=(2, 8, 8),
        name="maxnet",
    )


def deployed_pair(net_fn, rng, n_calib=32):
    net = net_fn()
    c, h, w = net.input_shape
    calib = rng.normal(size=(n_calib, c, h, w))
    mf = MFDFPNetwork.from_float(net, calib)
    mf.calibrate_bias_to_accumulator_grid()
    return mf, mf.deploy(), calib


class TestBitAccuracy:
    def test_exact_match_on_maxpool_network(self, rng):
        """Integer datapath == float64 quantized simulation, bit for bit."""
        mf, dep, calib = deployed_pair(maxpool_net, rng)
        acc = Accelerator(AcceleratorConfig(check_widths=True))
        x = rng.normal(size=(16, 2, 8, 8))
        hw = acc.run(dep, x)
        sw = mf.logits(x)
        f = dep.ops[-1].out_frac
        assert np.array_equal(np.rint(hw * 2.0**f), np.rint(sw * 2.0**f))

    def test_avgpool_network_within_one_lsb(self, rng):
        """Average pooling divides by 9; the float sim may round exact .5
        ties differently than the exact rational hardware divider, so we
        allow at most 1 LSB of divergence."""
        mf, dep, calib = deployed_pair(lambda: cifar10_small(size=16, dtype=np.float64), rng)
        acc = Accelerator(AcceleratorConfig(check_widths=True))
        x = rng.normal(size=(8, 3, 16, 16))
        f = dep.ops[-1].out_frac
        hw_codes = np.rint(acc.run(dep, x) * 2.0**f)
        sw_codes = np.rint(mf.logits(x) * 2.0**f)
        assert np.abs(hw_codes - sw_codes).max() <= 1

    def test_predictions_match_quantized_sim(self, rng):
        mf, dep, _ = deployed_pair(lambda: cifar10_small(size=16, dtype=np.float64), rng)
        acc = Accelerator()
        x = rng.normal(size=(32, 3, 16, 16))
        agreement = (acc.run(dep, x).argmax(1) == mf.predict(x)).mean()
        assert agreement >= 0.95

    def test_output_codes_fit_8_bits(self, rng):
        _, dep, _ = deployed_pair(maxpool_net, rng)
        x = rng.normal(size=(8, 2, 8, 8)) * 10  # deliberately saturating
        codes = execute_deployed(dep, x)
        assert np.abs(codes).max() <= 127

    def test_deterministic(self, rng):
        _, dep, _ = deployed_pair(maxpool_net, rng)
        x = rng.normal(size=(4, 2, 8, 8))
        assert np.array_equal(execute_deployed(dep, x), execute_deployed(dep, x))

    def test_fp32_accelerator_refuses_integer_run(self, rng):
        _, dep, _ = deployed_pair(maxpool_net, rng)
        acc = Accelerator(AcceleratorConfig(precision="fp32"))
        with pytest.raises(ValueError):
            acc.run(dep, rng.normal(size=(1, 2, 8, 8)))

    def test_run_float_matches_network(self, rng):
        net = maxpool_net()
        acc = Accelerator(AcceleratorConfig(precision="fp32"))
        x = rng.normal(size=(3, 2, 8, 8))
        assert np.allclose(acc.run_float(net, x), net.logits(x))


class TestLatencyEnergy:
    def test_mfdfp_marginally_faster_than_fp32(self):
        """Same tiles, shallower pipeline: Table 2's 246.52 vs 246.27 us."""
        net = cifar10_full()
        t_fp = Accelerator(AcceleratorConfig(precision="fp32")).latency_us(net)
        t_mf = Accelerator(AcceleratorConfig(precision="mfdfp")).latency_us(net)
        assert t_mf < t_fp
        assert (t_fp - t_mf) / t_fp < 0.01  # sub-percent difference

    def test_energy_is_power_times_time(self):
        net = cifar10_full()
        acc = Accelerator(AcceleratorConfig(precision="mfdfp"))
        assert acc.energy_uj(net) == pytest.approx(
            acc.power_mw * 1e-3 * acc.latency_us(net)
        )

    def test_energy_saving_band_cifar(self):
        """Paper: 89.81% energy saving on CIFAR-10."""
        net = cifar10_full()
        e_fp = Accelerator(AcceleratorConfig(precision="fp32")).energy_uj(net)
        e_mf = Accelerator(AcceleratorConfig(precision="mfdfp")).energy_uj(net)
        saving = 100 * (1 - e_mf / e_fp)
        assert 87.0 < saving < 92.0

    def test_ensemble_energy_saving_band(self):
        """Paper: 80.17% saving with a 2-network ensemble."""
        net = cifar10_full()
        e_fp = Accelerator(AcceleratorConfig(precision="fp32")).energy_uj(net)
        e_ens = Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=2)).energy_uj(net)
        saving = 100 * (1 - e_ens / e_fp)
        assert 76.0 < saving < 83.0

    def test_ensemble_latency_equals_single(self):
        """Members run in parallel PUs: latency is one network's latency."""
        net = cifar10_full()
        t1 = Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=1)).latency_us(net)
        t2 = Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=2)).latency_us(net)
        assert t1 == t2

    def test_schedule_records_memory_traffic(self):
        acc = Accelerator()
        acc.schedule(cifar10_full())
        assert acc.memory.total_accesses() > 0

    def test_deployed_and_network_latency_agree(self, rng):
        mf, dep, _ = deployed_pair(lambda: cifar10_small(size=16, dtype=np.float64), rng)
        acc = Accelerator()
        assert acc.latency_us(dep) == acc.latency_us(mf.to_float())


class TestConfig:
    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(precision="int4")

    def test_invalid_pus(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(num_pus=0)

    def test_pipeline_depths_ordered(self):
        assert PIPELINE_DEPTH["fp32"] > PIPELINE_DEPTH["mfdfp"]

    def test_area_power_properties(self):
        acc = Accelerator(AcceleratorConfig(precision="mfdfp"))
        assert acc.area_mm2 > 0
        assert acc.power_mw > 0
        area_s, power_s = acc.savings_vs_baseline()
        assert area_s > 0 and power_s > 0
