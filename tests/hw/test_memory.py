"""Buffer geometry and access accounting."""

import pytest

from repro.hw.memory import BufferConfig, DmaEngine, MemorySubsystem, SramBuffer


class TestBufferConfig:
    def test_default_is_mfdfp_widths(self):
        c = BufferConfig()
        assert c.input_bits == 8
        assert c.weight_bits == 4

    def test_total_bits(self):
        c = BufferConfig(input_words=10, output_words=20, weight_words=30,
                         input_bits=8, output_bits=8, weight_bits=4)
        assert c.total_bits == 10 * 8 + 20 * 8 + 30 * 4

    def test_scaled_to_fp32_is_wider(self):
        base = BufferConfig()
        fp = base.scaled_to_precision(activation_bits=32, weight_bits=32)
        assert fp.input_words == base.input_words  # geometry unchanged
        assert fp.total_bits > base.total_bits

    def test_fp32_vs_mfdfp_bit_ratio(self):
        """Activations 4x wider, weights 8x wider."""
        base = BufferConfig(input_words=100, output_words=100, weight_words=100)
        fp = base.scaled_to_precision(32, 32)
        act_bits = 200 * 8
        w_bits = 100 * 4
        assert fp.total_bits == act_bits * 4 + w_bits * 8

    def test_kbytes(self):
        c = BufferConfig(input_words=1024, output_words=0, weight_words=0, input_bits=8)
        assert c.total_kbytes == 1.0


class TestSramBuffer:
    def test_counters(self):
        buf = SramBuffer("b", 128, 8)
        buf.read(10)
        buf.write(3)
        assert (buf.reads, buf.writes) == (10, 3)
        buf.reset_counters()
        assert (buf.reads, buf.writes) == (0, 0)

    def test_bits(self):
        assert SramBuffer("b", 128, 8).bits == 1024

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SramBuffer("b", 0, 8)

    def test_negative_access_rejected(self):
        buf = SramBuffer("b", 16, 8)
        with pytest.raises(ValueError):
            buf.read(-1)
        with pytest.raises(ValueError):
            buf.write(-1)


class TestDma:
    def test_transfer_accumulates(self):
        dma = DmaEngine("input")
        dma.transfer(100)
        dma.transfer(50)
        assert dma.bytes_transferred == 150
        dma.reset()
        assert dma.bytes_transferred == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DmaEngine("x").transfer(-1)


class TestMemorySubsystem:
    def test_three_buffers(self):
        mem = MemorySubsystem(BufferConfig())
        assert {b.name for b in mem.buffers} == {"input", "weights", "output"}

    def test_record_layer(self):
        mem = MemorySubsystem(BufferConfig())
        mem.record_layer(inputs_read=5, weights_read=7, outputs_written=3)
        assert mem.input_buffer.reads == 5
        assert mem.weight_buffer.reads == 7
        assert mem.output_buffer.writes == 3
        assert mem.total_accesses() == 15

    def test_reset(self):
        mem = MemorySubsystem(BufferConfig())
        mem.record_layer(1, 2, 3)
        mem.dma["input"].transfer(10)
        mem.reset_counters()
        assert mem.total_accesses() == 0
        assert mem.dma["input"].bytes_transferred == 0
