"""Serialization of deployed networks (via the repro.io compat shim)."""

import json

import numpy as np
import pytest

from repro.core.mfdfp import MFDFPNetwork
from repro.hw.accelerator import execute_deployed
from repro.hw.export import (
    FORMAT_VERSION,
    ArtifactError,
    ArtifactSchemaError,
    ArtifactVersionError,
    load_deployed,
    save_deployed,
)
from repro.zoo import cifar10_small


@pytest.fixture
def deployed(rng):
    net = cifar10_small(size=16, dtype=np.float64)
    mf = MFDFPNetwork.from_float(net, rng.normal(size=(8, 3, 16, 16)))
    return mf.deploy()


class TestRoundtrip:
    def test_metadata_preserved(self, deployed, tmp_path):
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)
        loaded = load_deployed(path)
        assert loaded.name == deployed.name
        assert loaded.input_shape == deployed.input_shape
        assert loaded.input_frac == deployed.input_frac
        assert loaded.bits == deployed.bits
        assert len(loaded.ops) == len(deployed.ops)

    def test_op_fields_preserved(self, deployed, tmp_path):
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)
        loaded = load_deployed(path)
        for a, b in zip(deployed.ops, loaded.ops):
            assert a.kind == b.kind
            assert a.in_frac == b.in_frac
            assert a.out_frac == b.out_frac
            assert a.activation == b.activation

    def test_weights_bit_identical(self, deployed, tmp_path):
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)
        loaded = load_deployed(path)
        for a, b in zip(deployed.ops, loaded.ops):
            if a.weight_codes is None:
                assert b.weight_codes is None
            else:
                assert np.array_equal(a.weight_codes, b.weight_codes)
                assert np.array_equal(a.bias_int, b.bias_int)

    def test_execution_bit_identical(self, deployed, tmp_path, rng):
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)
        loaded = load_deployed(path)
        x = rng.normal(size=(8, 3, 16, 16))
        assert np.array_equal(execute_deployed(deployed, x), execute_deployed(loaded, x))

    def test_memory_accounting_preserved(self, deployed, tmp_path):
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)
        loaded = load_deployed(path)
        assert loaded.parameter_count() == deployed.parameter_count()
        assert loaded.weight_memory_mb() == deployed.weight_memory_mb()


def _rewrite_header(src, dst, mutate):
    with np.load(src) as data:
        arrays = {k: data[k] for k in data.files if k != "__header__"}
        header = json.loads(bytes(data["__header__"]).decode())
    np.savez(
        dst,
        __header__=np.frombuffer(json.dumps(mutate(header)).encode(), dtype=np.uint8),
        **arrays,
    )
    return dst


class TestErrors:
    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ValueError, match="missing header"):
            load_deployed(path)

    def test_wrong_version_rejected(self, deployed, tmp_path):
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)
        bad = _rewrite_header(
            path, tmp_path / "bad.npz",
            lambda h: {**h, "format_version": FORMAT_VERSION + 1},
        )
        with pytest.raises(ValueError, match="unsupported format version"):
            load_deployed(bad)
        # ...and the typed error is part of the contract now.
        with pytest.raises(ArtifactVersionError):
            load_deployed(bad)

    def test_missing_field_rejected_before_reconstruction(self, deployed, tmp_path):
        """Regression: a dropped header field used to surface as a raw
        KeyError/TypeError deep inside DeployedLayer reconstruction."""
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)

        def drop_field(h):
            h = json.loads(json.dumps(h))
            del h["meta"]["ops"][0]["kernel_size"]
            return h

        bad = _rewrite_header(path, tmp_path / "bad.npz", drop_field)
        with pytest.raises(ArtifactSchemaError, match="kernel_size"):
            load_deployed(bad)

    def test_wrong_dtype_rejected(self, deployed, tmp_path):
        """Regression: float weight codes used to flow into execution."""
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["op0.weight_codes"] = arrays["op0.weight_codes"].astype(np.float64)
        np.savez(tmp_path / "bad.npz", **arrays)
        with pytest.raises(ArtifactSchemaError, match="integer"):
            load_deployed(tmp_path / "bad.npz")

    def test_errors_remain_value_errors(self):
        """The pre-shim API raised ValueError; old callers must still catch."""
        assert issubclass(ArtifactError, ValueError)


class TestLegacyCompat:
    def test_v1_artifact_loads_through_shim(self, deployed, tmp_path):
        """A file written by the seed-era exporter still loads (and runs)."""
        # Byte layout of the original hw/export writer.
        v1_fields = (
            "kind", "name", "in_frac", "out_frac", "activation", "in_channels",
            "out_channels", "kernel_size", "stride", "pad", "ceil_mode",
            "in_features", "out_features",
        )
        header = {
            "format_version": 1,
            "name": deployed.name,
            "input_shape": list(deployed.input_shape),
            "input_frac": deployed.input_frac,
            "bits": deployed.bits,
            "ops": [{f: getattr(op, f) for f in v1_fields} for op in deployed.ops],
        }
        arrays = {"__header__": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)}
        for i, op in enumerate(deployed.ops):
            if op.weight_codes is not None:
                arrays[f"op{i}.weight_codes"] = op.weight_codes
                arrays[f"op{i}.weight_shape"] = np.array(op.weight_codes.shape, dtype=np.int64)
            if op.bias_int is not None:
                arrays[f"op{i}.bias_int"] = op.bias_int
        path = tmp_path / "legacy.npz"
        np.savez(path, **arrays)

        loaded = load_deployed(path)
        x = np.random.default_rng(3).normal(size=(4, 3, 16, 16))
        assert np.array_equal(execute_deployed(deployed, x), execute_deployed(loaded, x))
