"""Serialization of deployed networks."""

import numpy as np
import pytest

from repro.core.mfdfp import MFDFPNetwork
from repro.hw.accelerator import execute_deployed
from repro.hw.export import FORMAT_VERSION, load_deployed, save_deployed
from repro.zoo import cifar10_small


@pytest.fixture
def deployed(rng):
    net = cifar10_small(size=16, dtype=np.float64)
    mf = MFDFPNetwork.from_float(net, rng.normal(size=(8, 3, 16, 16)))
    return mf.deploy()


class TestRoundtrip:
    def test_metadata_preserved(self, deployed, tmp_path):
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)
        loaded = load_deployed(path)
        assert loaded.name == deployed.name
        assert loaded.input_shape == deployed.input_shape
        assert loaded.input_frac == deployed.input_frac
        assert loaded.bits == deployed.bits
        assert len(loaded.ops) == len(deployed.ops)

    def test_op_fields_preserved(self, deployed, tmp_path):
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)
        loaded = load_deployed(path)
        for a, b in zip(deployed.ops, loaded.ops):
            assert a.kind == b.kind
            assert a.in_frac == b.in_frac
            assert a.out_frac == b.out_frac
            assert a.activation == b.activation

    def test_weights_bit_identical(self, deployed, tmp_path):
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)
        loaded = load_deployed(path)
        for a, b in zip(deployed.ops, loaded.ops):
            if a.weight_codes is None:
                assert b.weight_codes is None
            else:
                assert np.array_equal(a.weight_codes, b.weight_codes)
                assert np.array_equal(a.bias_int, b.bias_int)

    def test_execution_bit_identical(self, deployed, tmp_path, rng):
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)
        loaded = load_deployed(path)
        x = rng.normal(size=(8, 3, 16, 16))
        assert np.array_equal(execute_deployed(deployed, x), execute_deployed(loaded, x))

    def test_memory_accounting_preserved(self, deployed, tmp_path):
        path = tmp_path / "net.npz"
        save_deployed(deployed, path)
        loaded = load_deployed(path)
        assert loaded.parameter_count() == deployed.parameter_count()
        assert loaded.weight_memory_mb() == deployed.weight_memory_mb()


class TestErrors:
    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ValueError, match="missing header"):
            load_deployed(path)

    def test_wrong_version_rejected(self, deployed, tmp_path, monkeypatch):
        import repro.hw.export as export_mod

        path = tmp_path / "net.npz"
        monkeypatch.setattr(export_mod, "FORMAT_VERSION", FORMAT_VERSION + 1)
        save_deployed(deployed, path)
        monkeypatch.setattr(export_mod, "FORMAT_VERSION", FORMAT_VERSION)
        with pytest.raises(ValueError, match="unsupported format version"):
            load_deployed(path)
