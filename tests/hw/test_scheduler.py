"""Tile scheduler: hand-computed cycle counts and latency properties."""

import numpy as np
import pytest

from repro.core.mfdfp import MFDFPNetwork
from repro.hw.scheduler import TileScheduler
from repro.nn import Conv2D, Dense, Flatten, LocalResponseNorm, MaxPool2D, Network, ReLU
from repro.zoo import alexnet, cifar10_full


class TestHandComputedCycles:
    def test_conv_cycles(self):
        """conv1 of cifar10_full: 32x32 positions, 32 channels (2 tiles of
        16), 75 synapses (5 chunks of 16): 1024 * 2 * 5 = 10240 cycles."""
        sched = TileScheduler(pipeline_depth=0)
        net = Network(
            [Conv2D(3, 32, 5, pad=2, name="conv1")], input_shape=(3, 32, 32), name="c"
        )
        s = sched.schedule_network(net)
        assert s.layers[0].cycles == 1024 * 2 * 5
        assert s.layers[0].macs == 32 * 1024 * 75

    def test_dense_cycles(self):
        """ip1: 10 outputs (1 tile), 1024 inputs (64 chunks): 64 cycles."""
        sched = TileScheduler(pipeline_depth=0)
        net = Network([Dense(1024, 10, name="ip1")], input_shape=(1024,), name="d")
        s = sched.schedule_network(net)
        assert s.layers[0].cycles == 64

    def test_pool_cycles(self):
        """pool1 3x3 on 32x32x32 -> 16x16x32 outputs * 9 / 16 elems."""
        sched = TileScheduler(pipeline_depth=0)
        net = Network([MaxPool2D(3, stride=2, name="p")], input_shape=(32, 32, 32), name="p")
        s = sched.schedule_network(net)
        assert s.layers[0].cycles == int(np.ceil(32 * 16 * 16 * 9 / 16))

    def test_pipeline_depth_added_per_layer(self):
        net = Network(
            [Conv2D(3, 16, 3, pad=1, name="c"), ReLU(), Flatten(), Dense(16 * 64, 10, name="d")],
            input_shape=(3, 8, 8),
            name="n",
        )
        shallow = TileScheduler(pipeline_depth=0).schedule_network(net)
        deep = TileScheduler(pipeline_depth=5).schedule_network(net)
        assert deep.total_cycles == shallow.total_cycles + 5 * 2  # conv + dense


class TestFullNetworks:
    def test_cifar10_full_latency_magnitude(self):
        """The paper reports ~246.5 us at 250 MHz; our model must land in
        the same regime (tile model, no DMA stalls): 150-350 us."""
        sched = TileScheduler(clock_mhz=250.0, pipeline_depth=4)
        s = sched.schedule_network(cifar10_full())
        assert 150.0 < s.time_us() < 350.0

    def test_alexnet_latency_magnitude(self):
        """Paper: ~15.7 ms; accept the same order of magnitude."""
        sched = TileScheduler(clock_mhz=250.0, pipeline_depth=4)
        s = sched.schedule_network(alexnet())
        assert 8_000.0 < s.time_us() < 40_000.0

    def test_compute_cycles_dominated_by_convs(self):
        s = TileScheduler().schedule_network(cifar10_full())
        conv_cycles = sum(l.cycles for l in s.layers if l.kind == "conv")
        assert conv_cycles / s.total_cycles > 0.8

    def test_utilization_bounded(self):
        s = TileScheduler().schedule_network(cifar10_full())
        assert 0.0 < s.utilization() <= 1.0

    def test_lrn_rejected(self):
        net = cifar10_full(include_lrn=True)
        with pytest.raises(ValueError, match="LRN"):
            TileScheduler().schedule_network(net)


class TestDeployedVsNetworkSchedules:
    def test_same_cycles_for_same_topology(self, rng):
        """Scheduling the float net and its deployed MF-DFP twin gives the
        same cycle count (same tiles; precision does not change the
        schedule)."""
        from repro.zoo import cifar10_small

        net = cifar10_small(size=16, dtype=np.float64)
        calib = rng.normal(size=(8, 3, 16, 16))
        mf = MFDFPNetwork.from_float(net, calib)
        dep = mf.deploy()
        sched = TileScheduler(pipeline_depth=3)
        cycles_net = sched.schedule_network(mf.to_float()).total_cycles
        cycles_dep = sched.schedule_deployed(dep).total_cycles
        assert cycles_net == cycles_dep

    def test_time_scales_with_clock(self):
        net = cifar10_full()
        fast = TileScheduler(clock_mhz=500.0).schedule_network(net)
        slow = TileScheduler(clock_mhz=250.0).schedule_network(net)
        assert np.isclose(slow.time_us(), 2 * fast.time_us())

    def test_network_without_input_shape_rejected(self):
        net = Network([Dense(8, 4)])
        with pytest.raises(ValueError):
            TileScheduler().schedule_network(net)
