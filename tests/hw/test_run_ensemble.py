"""Hardware ensemble execution (Phase 3 on the multi-PU accelerator)."""

import numpy as np
import pytest

from repro.core.mfdfp import MFDFPNetwork
from repro.hw import Accelerator, AcceleratorConfig
from repro.zoo import cifar10_small


@pytest.fixture(scope="module")
def two_members():
    rng = np.random.default_rng(0)
    members = []
    for seed in (1, 2):
        net = cifar10_small(size=16, dtype=np.float64, rng=np.random.default_rng(seed))
        calib = rng.normal(size=(8, 3, 16, 16))
        members.append(MFDFPNetwork.from_float(net, calib).deploy())
    return members


class TestRunEnsemble:
    def test_averages_member_logits(self, two_members, rng):
        acc = Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=2))
        x = rng.normal(size=(4, 3, 16, 16))
        z = acc.run_ensemble(two_members, x)
        expected = (acc.run(two_members[0], x) + acc.run(two_members[1], x)) / 2
        assert np.allclose(z, expected)

    def test_single_member_allowed(self, two_members, rng):
        acc = Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=1))
        x = rng.normal(size=(2, 3, 16, 16))
        assert np.allclose(
            acc.run_ensemble(two_members[:1], x), acc.run(two_members[0], x)
        )

    def test_requires_enough_pus(self, two_members, rng):
        acc = Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=1))
        with pytest.raises(ValueError, match="processing units"):
            acc.run_ensemble(two_members, rng.normal(size=(1, 3, 16, 16)))

    def test_requires_members(self):
        acc = Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=2))
        with pytest.raises(ValueError, match="at least one"):
            acc.run_ensemble([], np.zeros((1, 3, 16, 16)))

    def test_fp32_rejected(self, two_members, rng):
        acc = Accelerator(AcceleratorConfig(precision="fp32", num_pus=2))
        with pytest.raises(ValueError):
            acc.run_ensemble(two_members, rng.normal(size=(1, 3, 16, 16)))


class TestSkipWeightLayers:
    def test_skipped_layer_keeps_float_weights(self, rng):
        from repro.core.quantizer import NetworkQuantizer

        net = cifar10_small(size=16, dtype=np.float64)
        calib = rng.normal(size=(8, 3, 16, 16))
        quantizer = NetworkQuantizer(skip_weight_layers=("conv1",))
        quantizer.quantize(net, calib)
        assert net.layer("conv1").weight_quantizer is None
        assert net.layer("conv2").weight_quantizer is not None

    def test_skipped_network_cannot_deploy(self, rng):
        from repro.core.mfdfp import deploy
        from repro.core.quantizer import NetworkQuantizer

        net = cifar10_small(size=16, dtype=np.float64)
        calib = rng.normal(size=(8, 3, 16, 16))
        quantizer = NetworkQuantizer(skip_weight_layers=("conv1",))
        plan = quantizer.quantize(net, calib)
        with pytest.raises(ValueError, match="float weights"):
            deploy(net, plan)

    def test_skipping_first_layer_reduces_error(self, trained_small_net, small_data, rng):
        """The classic ablation: exempting the first layer's weights from
        quantization should not hurt (usually helps slightly)."""
        from repro.core.quantizer import NetworkQuantizer
        from repro.nn import error_rate

        train, test = small_data
        calib = train.x[:128]
        full = trained_small_net.clone()
        NetworkQuantizer().quantize(full, calib)
        partial = trained_small_net.clone()
        NetworkQuantizer(skip_weight_layers=("conv1",)).quantize(partial, calib)
        assert error_rate(partial, test) <= error_rate(full, test) + 0.05
