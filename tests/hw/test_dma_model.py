"""Double-buffered DMA latency model."""

import numpy as np
import pytest

from repro.hw import Accelerator, AcceleratorConfig, TileScheduler
from repro.zoo import alexnet, cifar10_full


class TestSchedulerDma:
    def test_disabled_by_default(self):
        s = TileScheduler().schedule_network(cifar10_full())
        assert all(l.dma_cycles == 0 for l in s.layers)
        assert not s.memory_bound_layers()

    def test_effective_cycles_are_max_of_compute_and_dma(self):
        sched = TileScheduler(pipeline_depth=3, dma_bandwidth=0.001)  # starved
        s = sched.schedule_network(cifar10_full())
        for layer in s.layers:
            assert layer.cycles == max(layer.compute_cycles, layer.dma_cycles) + 3

    def test_high_bandwidth_is_compute_bound(self):
        sched = TileScheduler(dma_bandwidth=1e9)
        s = sched.schedule_network(cifar10_full())
        assert not s.memory_bound_layers()

    def test_low_bandwidth_is_memory_bound(self):
        sched = TileScheduler(dma_bandwidth=0.01)
        s = sched.schedule_network(cifar10_full())
        assert len(s.memory_bound_layers()) == len(s.layers)

    def test_dma_cycles_scale_with_bandwidth(self):
        fast = TileScheduler(dma_bandwidth=8.0).schedule_network(cifar10_full())
        slow = TileScheduler(dma_bandwidth=4.0).schedule_network(cifar10_full())
        for f, s in zip(fast.layers, slow.layers):
            assert s.dma_cycles == pytest.approx(2 * f.dma_cycles, abs=1)

    def test_wider_words_move_more_bytes(self):
        mf = TileScheduler(dma_bandwidth=8.0, activation_bits=8, weight_bits=4)
        fp = TileScheduler(dma_bandwidth=8.0, activation_bits=32, weight_bits=32)
        s_mf = mf.schedule_network(cifar10_full())
        s_fp = fp.schedule_network(cifar10_full())
        for a, b in zip(s_mf.layers, s_fp.layers):
            assert b.dma_cycles > a.dma_cycles

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            TileScheduler(dma_bandwidth=0.0)

    def test_unique_elements_counted_once(self):
        """DMA traffic counts the feature map / weights once, not per tile
        reuse: conv1 of cifar10_full reads 3*32*32 inputs."""
        s = TileScheduler(dma_bandwidth=1.0).schedule_network(cifar10_full())
        conv1 = s.layers[0]
        assert conv1.input_elems == 3 * 32 * 32
        assert conv1.weight_elems == 32 * 75 + 32
        assert conv1.output_elems == 32 * 32 * 32
        # SRAM accesses (with reuse) far exceed unique elements
        assert conv1.inputs_read > conv1.input_elems


class TestAcceleratorDma:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(dma_bandwidth=-1.0)

    def test_fp32_stalls_before_mfdfp(self):
        """At moderate bandwidth, the FP32 design (4-8x more bytes) goes
        memory bound while MF-DFP stays compute bound — the second,
        unreported benefit of the codesign."""
        bw = 64.0
        fp = Accelerator(AcceleratorConfig(precision="fp32", dma_bandwidth=bw))
        mf = Accelerator(AcceleratorConfig(precision="mfdfp", dma_bandwidth=bw))
        net = alexnet()
        t_fp = fp.latency_us(net)
        t_mf = mf.latency_us(net)
        assert t_fp / t_mf > 1.3

    def test_speedup_grows_as_bandwidth_shrinks(self):
        net = alexnet()
        speedups = []
        for bw in (256.0, 16.0, 1.0):
            fp = Accelerator(AcceleratorConfig(precision="fp32", dma_bandwidth=bw))
            mf = Accelerator(AcceleratorConfig(precision="mfdfp", dma_bandwidth=bw))
            speedups.append(fp.latency_us(net) / mf.latency_us(net))
        assert speedups[0] < speedups[1] < speedups[2]

    def test_speedup_bounded_by_compression(self):
        """In the fully memory-bound limit, the speedup approaches the
        byte ratio (8x for weights, 4x for activations) and cannot
        exceed 8x."""
        fp = Accelerator(AcceleratorConfig(precision="fp32", dma_bandwidth=0.01))
        mf = Accelerator(AcceleratorConfig(precision="mfdfp", dma_bandwidth=0.01))
        net = alexnet()
        ratio = fp.latency_us(net) / mf.latency_us(net)
        assert 4.0 < ratio <= 8.0

    def test_paper_setting_unaffected(self):
        """Without a bandwidth, latency matches the published-style model."""
        default = Accelerator(AcceleratorConfig(precision="mfdfp"))
        assert default.latency_us(cifar10_full()) == pytest.approx(220.27, abs=0.5)
