"""Cross-module consistency properties.

These tie together guarantees that individual module tests state locally:
scheduler scaling laws, cost-model monotonicity, quantization-plan
coherence, and accounting identities that must hold across the whole
stack.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mfdfp import MFDFPNetwork
from repro.core.quantizer import NetworkQuantizer
from repro.hw.cost import CostModel
from repro.hw.scheduler import TileScheduler
from repro.nn import Conv2D, Dense, Flatten, Network, ReLU
from repro.report import memory_report


class TestSchedulerScalingLaws:
    @given(channels=st.sampled_from([16, 32, 64, 128]))
    @settings(max_examples=8, deadline=None)
    def test_conv_cycles_linear_in_output_channels(self, channels):
        """F is tiled by 16, so cycles scale linearly in F for F % 16 == 0."""
        sched = TileScheduler(pipeline_depth=0)

        def cycles(f):
            net = Network([Conv2D(16, f, 3, pad=1, name="c")], input_shape=(16, 8, 8), name="n")
            return sched.schedule_network(net).layers[0].cycles

        assert cycles(channels) == (channels // 16) * cycles(16)

    @given(size=st.sampled_from([8, 16, 32]))
    @settings(max_examples=6, deadline=None)
    def test_conv_cycles_quadratic_in_spatial_size(self, size):
        sched = TileScheduler(pipeline_depth=0)

        def cycles(s):
            net = Network([Conv2D(16, 16, 3, pad=1, name="c")], input_shape=(16, s, s), name="n")
            return sched.schedule_network(net).layers[0].cycles

        assert cycles(size) == (size * size // 64) * cycles(8)

    def test_macs_invariant_under_tiling_parameters(self):
        """MAC count is a property of the network, not the tile size."""
        from repro.zoo import cifar10_full

        net = cifar10_full()
        a = TileScheduler(pipeline_depth=0).schedule_network(net).total_macs
        b = TileScheduler(pipeline_depth=9).schedule_network(net).total_macs
        assert a == b

    def test_total_macs_match_layer_definitions(self):
        from repro.zoo import cifar10_full

        net = cifar10_full()
        schedule = TileScheduler().schedule_network(net)
        expected = 0
        shape = net.input_shape
        for layer in net.layers:
            if hasattr(layer, "macs"):
                expected += layer.macs(shape)
            shape = layer.output_shape(shape)
        assert schedule.total_macs == expected


class TestCostModelProperties:
    @pytest.fixture(scope="class")
    def model(self):
        return CostModel()

    @given(pus=st.integers(1, 4))
    @settings(max_examples=4, deadline=None)
    def test_area_additive_in_pus(self, pus):
        """area(n PUs) = shared + n * per-PU: perfectly affine."""
        model = CostModel()
        a1 = model.evaluate("mfdfp", 1).area_mm2
        a2 = model.evaluate("mfdfp", 2).area_mm2
        an = model.evaluate("mfdfp", pus).area_mm2
        per_pu = a2 - a1
        shared = a1 - per_pu
        assert an == pytest.approx(shared + pus * per_pu, rel=1e-9)

    def test_precision_ordering_consistent_across_metrics(self, model):
        """mfdfp < fixed8 < fp32 holds for area, power, and buffer bits."""
        points = {p: model.evaluate(p, 1) for p in ("mfdfp", "fixed8", "fp32")}
        for metric in ("area_mm2", "power_mw"):
            values = [getattr(points[p], metric) for p in ("mfdfp", "fixed8", "fp32")]
            assert values == sorted(values)

    def test_calibration_independent_of_query_order(self):
        a = CostModel().evaluate("mfdfp", 1).area_mm2
        model = CostModel()
        model.evaluate("fp32", 2)
        model.evaluate("fixed8", 1)
        assert model.evaluate("mfdfp", 1).area_mm2 == a


class TestQuantizationPlanProperties:
    @given(seed=st.integers(0, 2**16), bits=st.sampled_from([6, 8, 10]))
    @settings(max_examples=15, deadline=None)
    def test_plan_boundaries_chain_for_random_nets(self, seed, bits):
        rng = np.random.default_rng(seed)
        net = Network(
            [
                Conv2D(3, 4, 3, pad=1, dtype=np.float64, rng=rng, name="c1"),
                ReLU(name="r1"),
                Flatten(name="f"),
                Dense(4 * 36, 3, dtype=np.float64, rng=rng, name="d1"),
            ],
            input_shape=(3, 6, 6),
            name="p",
        )
        calib = rng.normal(scale=float(rng.uniform(0.1, 5.0)), size=(8, 3, 6, 6))
        plan = NetworkQuantizer(bits=bits).plan(net, calib)
        prev = plan.input_fmt
        for spec in plan.layers:
            assert spec.in_fmt == prev
            assert spec.out_fmt.bits == bits
            prev = spec.out_fmt

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_calibration_batch_never_saturates_its_own_plan(self, seed):
        """By construction, the calibration data itself fits the chosen
        formats at every boundary (that is what Ristretto's rule means)."""
        rng = np.random.default_rng(seed)
        net = Network(
            [
                Conv2D(2, 4, 3, pad=1, dtype=np.float64, rng=rng, name="c1"),
                ReLU(name="r1"),
                Flatten(name="f"),
                Dense(4 * 16, 3, dtype=np.float64, rng=rng, name="d1"),
            ],
            input_shape=(2, 4, 4),
            name="p",
        )
        calib = rng.normal(scale=float(rng.uniform(0.5, 3.0)), size=(8, 2, 4, 4))
        plan = NetworkQuantizer().plan(net, calib)
        out = calib
        for layer, spec in zip(net.layers, plan.layers):
            out = layer.forward(out)
            if spec.quantize_output:
                # Only boundary-owning layers make the no-saturation
                # promise: a conv sharing its ReLU's boundary may emit
                # large negatives that the ReLU clamps by design.
                assert float(np.abs(out).max()) <= spec.out_fmt.max_value + 1e-9


class TestAccountingIdentities:
    def test_deployed_memory_equals_report_memory(self, rng):
        from repro.zoo import cifar10_small

        net = cifar10_small(size=16, dtype=np.float64)
        dep = MFDFPNetwork.from_float(net, rng.normal(size=(8, 3, 16, 16))).deploy()
        report = memory_report(net)
        assert dep.weight_memory_mb() == pytest.approx(report.mfdfp_mb)

    def test_float_bytes_are_param_count_times_four(self):
        from repro.zoo import cifar10_full

        net = cifar10_full()
        report = memory_report(net)
        assert report.float_mb * (1 << 20) == net.param_count() * 4

    def test_energy_identity_across_interfaces(self):
        """energy_uj == power * time == sum of the per-layer breakdown."""
        from repro.hw import Accelerator, AcceleratorConfig
        from repro.zoo import cifar10_full

        net = cifar10_full()
        acc = Accelerator(AcceleratorConfig(precision="mfdfp"))
        direct = acc.energy_uj(net)
        assert direct == pytest.approx(acc.power_mw * 1e-3 * acc.latency_us(net))
        assert direct == pytest.approx(sum(r["energy_uj"] for r in acc.energy_breakdown(net)))
