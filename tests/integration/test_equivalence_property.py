"""Property test: hw integer execution == sw quantized simulation for
randomly generated network topologies.

This is the strongest verification in the suite: hypothesis draws random
conv/pool/dense stacks, random weights, and random inputs; the deployed
integer datapath must agree with the float64 quantized simulation on
every sample (exactly for maxpool-only nets, within 1 LSB when average
pooling's non-dyadic division is involved).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mfdfp import MFDFPNetwork
from repro.hw.accelerator import execute_deployed
from repro.nn import AvgPool2D, Conv2D, Dense, Flatten, MaxPool2D, Network, ReLU


def build_random_net(rng, n_blocks, channels, use_avgpool, size=8, classes=4):
    """Random conv(+relu)(+pool) stack ending in flatten+dense."""
    layers = []
    in_ch = 3
    cur = size
    for i in range(n_blocks):
        out_ch = channels[i]
        layers.append(
            Conv2D(in_ch, out_ch, 3, pad=1, dtype=np.float64, rng=rng, name=f"conv{i}")
        )
        layers.append(ReLU(name=f"relu{i}"))
        if cur >= 4 and i < 2:
            pool_cls = AvgPool2D if use_avgpool else MaxPool2D
            layers.append(pool_cls(2, stride=2, name=f"pool{i}"))
            cur //= 2
        in_ch = out_ch
    layers.append(Flatten(name="flat"))
    layers.append(
        Dense(in_ch * cur * cur, classes, dtype=np.float64, rng=rng, name="fc")
    )
    return Network(layers, input_shape=(3, size, size), name="randnet")


@st.composite
def net_specs(draw):
    seed = draw(st.integers(0, 2**20))
    n_blocks = draw(st.integers(1, 3))
    channels = [draw(st.sampled_from([2, 4, 8])) for _ in range(n_blocks)]
    use_avgpool = draw(st.booleans())
    scale = draw(st.floats(0.2, 3.0))
    return seed, n_blocks, channels, use_avgpool, scale


class TestRandomNetEquivalence:
    @given(spec=net_specs())
    @settings(max_examples=25, deadline=None)
    def test_hw_matches_sw_quantized_simulation(self, spec):
        seed, n_blocks, channels, use_avgpool, scale = spec
        rng = np.random.default_rng(seed)
        net = build_random_net(rng, n_blocks, channels, use_avgpool)
        calib = rng.normal(scale=scale, size=(12, 3, 8, 8))
        mf = MFDFPNetwork.from_float(net, calib)
        mf.calibrate_bias_to_accumulator_grid()
        dep = mf.deploy()
        x = rng.normal(scale=scale, size=(6, 3, 8, 8))
        hw_codes = execute_deployed(dep, x, check_widths=True)
        f = dep.ops[-1].out_frac
        sw_codes = np.rint(mf.logits(x) * 2.0**f)
        tolerance = 1 if use_avgpool else 0
        assert np.abs(hw_codes - sw_codes).max() <= tolerance

    @given(spec=net_specs())
    @settings(max_examples=10, deadline=None)
    def test_deploy_roundtrip_preserves_execution(self, spec, tmp_path_factory):
        from repro.hw.export import load_deployed, save_deployed

        seed, n_blocks, channels, use_avgpool, scale = spec
        rng = np.random.default_rng(seed)
        net = build_random_net(rng, n_blocks, channels, use_avgpool)
        calib = rng.normal(scale=scale, size=(8, 3, 8, 8))
        dep = MFDFPNetwork.from_float(net, calib).deploy()
        path = tmp_path_factory.mktemp("dep") / "net.npz"
        save_deployed(dep, path)
        loaded = load_deployed(path)
        x = rng.normal(scale=scale, size=(4, 3, 8, 8))
        assert np.array_equal(execute_deployed(dep, x), execute_deployed(loaded, x))


class TestSaturationBehaviour:
    @pytest.mark.parametrize("scale", [10.0, 100.0])
    def test_out_of_calibration_inputs_saturate_gracefully(self, rng, scale):
        """Inputs far beyond calibration range saturate, never overflow."""
        net = build_random_net(rng, 2, [4, 4], use_avgpool=False)
        calib = rng.normal(size=(8, 3, 8, 8))  # unit-scale calibration
        mf = MFDFPNetwork.from_float(net, calib)
        dep = mf.deploy()
        x = rng.normal(scale=scale, size=(4, 3, 8, 8))
        codes = execute_deployed(dep, x, check_widths=True)
        assert np.abs(codes).max() <= 127


def build_tiny_deployed(seed, in_features, out_features, name):
    """Millisecond-scale deployed MLP for the serving property test."""
    from repro.core import deploy_calibrated

    rng = np.random.default_rng(seed)
    net = Network(
        [
            Dense(in_features, 12, rng=rng, name="d1"),
            ReLU(name="r"),
            Dense(12, out_features, rng=rng, name="d2"),
        ],
        input_shape=(in_features,),
        name=name,
    )
    calib = rng.normal(scale=0.5, size=(64, in_features)).astype(np.float32)
    return deploy_calibrated(net, calib)


@st.composite
def serve_specs(draw):
    seed = draw(st.integers(0, 2**16))
    n_requests = draw(st.integers(1, 40))
    workers = draw(st.integers(1, 3))
    max_batch = draw(st.sampled_from([1, 2, 4, 8]))
    n_crashes = draw(st.integers(0, 4))
    return seed, n_requests, workers, max_batch, n_crashes


class TestSupervisedServingEquivalence:
    """Random request mixes, worker counts and injected crashes: every
    successful response is bit-identical to serial eager evaluation, and
    no request is dropped or double-served (the per-model accounting
    ``submitted == completed + crashed + rejected`` closes exactly)."""

    @pytest.fixture(scope="class")
    def serving_models(self):
        from repro.core.engine import BatchedEngine

        deployed = {
            "prop_a": build_tiny_deployed(41, 6, 3, "prop_a"),
            "prop_b": build_tiny_deployed(42, 5, 4, "prop_b"),
        }
        engines = {name: BatchedEngine(dep) for name, dep in deployed.items()}
        shapes = {"prop_a": (6,), "prop_b": (5,)}
        return deployed, engines, shapes

    @given(spec=serve_specs())
    @settings(max_examples=15, deadline=None)
    def test_random_traffic_with_crashes_matches_serial_eager(
        self, spec, serving_models
    ):
        from repro.serve import (
            CrashError,
            CrashingEngine,
            ModelQuarantinedError,
            ModelRegistry,
            ServerRuntime,
            SupervisorPolicy,
            crash_schedule,
        )

        seed, n_requests, workers, max_batch, n_crashes = spec
        deployed, engines, shapes = serving_models
        rng = np.random.default_rng(seed)
        names = list(deployed)

        # One shared CrashingEngine per model: the call counter spans
        # restarts, so the seeded schedule injects crashes mid-stream.
        crashers = {
            name: CrashingEngine(
                engines[name],
                crash_on=crash_schedule(seed + i, n_calls=80, n_crashes=n_crashes),
                label=name,
            )
            for i, name in enumerate(names)
        }

        def provider(name, version):
            return crashers[name], "v-prop"

        registry = ModelRegistry()
        for name, dep in deployed.items():
            registry.register(name, (lambda d: (lambda: d))(dep))
        runtime = ServerRuntime(
            registry,
            names,
            workers=workers,
            max_batch=max_batch,
            max_queue=4096,
            engine_provider=provider,
            policy=SupervisorPolicy(
                max_failures=3, backoff_initial_s=0.001, backoff_cap_s=0.005
            ),
        ).start()

        plan = []  # (name, sample, future)
        for _ in range(n_requests):
            name = names[int(rng.integers(len(names)))]
            sample = rng.normal(scale=0.5, size=shapes[name]).astype(np.float32)
            plan.append((name, sample, runtime.submit(name, sample)))
        runtime.stop(drain=True)

        outcomes = {name: {"ok": 0, "crash": 0, "quarantine": 0} for name in names}
        for name, sample, future in plan:
            assert future.done()  # nothing dropped
            error = future.exception(timeout=0)
            if error is None:
                # Bit-identical to serial eager evaluation of the same
                # sample alone on the real engine.
                expected = engines[name].run(sample[None])[0]
                assert np.array_equal(future.result(timeout=0), expected)
                outcomes[name]["ok"] += 1
            elif isinstance(error, CrashError):
                outcomes[name]["crash"] += 1
            else:
                assert isinstance(error, ModelQuarantinedError)
                outcomes[name]["quarantine"] += 1

        for name in names:
            metrics = runtime.metrics(name)
            got = outcomes[name]
            total = got["ok"] + got["crash"] + got["quarantine"]
            # Exactly-once accounting: every admitted request resolved
            # through exactly one of the three paths.
            assert metrics.submitted == total
            assert metrics.completed == got["ok"]
            assert metrics.crashed == got["crash"]
            assert metrics.rejected == got["quarantine"]
            assert metrics.queue_depth == 0
