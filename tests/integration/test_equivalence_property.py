"""Property test: hw integer execution == sw quantized simulation for
randomly generated network topologies.

This is the strongest verification in the suite: hypothesis draws random
conv/pool/dense stacks, random weights, and random inputs; the deployed
integer datapath must agree with the float64 quantized simulation on
every sample (exactly for maxpool-only nets, within 1 LSB when average
pooling's non-dyadic division is involved).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mfdfp import MFDFPNetwork
from repro.hw.accelerator import execute_deployed
from repro.nn import AvgPool2D, Conv2D, Dense, Flatten, MaxPool2D, Network, ReLU


def build_random_net(rng, n_blocks, channels, use_avgpool, size=8, classes=4):
    """Random conv(+relu)(+pool) stack ending in flatten+dense."""
    layers = []
    in_ch = 3
    cur = size
    for i in range(n_blocks):
        out_ch = channels[i]
        layers.append(
            Conv2D(in_ch, out_ch, 3, pad=1, dtype=np.float64, rng=rng, name=f"conv{i}")
        )
        layers.append(ReLU(name=f"relu{i}"))
        if cur >= 4 and i < 2:
            pool_cls = AvgPool2D if use_avgpool else MaxPool2D
            layers.append(pool_cls(2, stride=2, name=f"pool{i}"))
            cur //= 2
        in_ch = out_ch
    layers.append(Flatten(name="flat"))
    layers.append(
        Dense(in_ch * cur * cur, classes, dtype=np.float64, rng=rng, name="fc")
    )
    return Network(layers, input_shape=(3, size, size), name="randnet")


@st.composite
def net_specs(draw):
    seed = draw(st.integers(0, 2**20))
    n_blocks = draw(st.integers(1, 3))
    channels = [draw(st.sampled_from([2, 4, 8])) for _ in range(n_blocks)]
    use_avgpool = draw(st.booleans())
    scale = draw(st.floats(0.2, 3.0))
    return seed, n_blocks, channels, use_avgpool, scale


class TestRandomNetEquivalence:
    @given(spec=net_specs())
    @settings(max_examples=25, deadline=None)
    def test_hw_matches_sw_quantized_simulation(self, spec):
        seed, n_blocks, channels, use_avgpool, scale = spec
        rng = np.random.default_rng(seed)
        net = build_random_net(rng, n_blocks, channels, use_avgpool)
        calib = rng.normal(scale=scale, size=(12, 3, 8, 8))
        mf = MFDFPNetwork.from_float(net, calib)
        mf.calibrate_bias_to_accumulator_grid()
        dep = mf.deploy()
        x = rng.normal(scale=scale, size=(6, 3, 8, 8))
        hw_codes = execute_deployed(dep, x, check_widths=True)
        f = dep.ops[-1].out_frac
        sw_codes = np.rint(mf.logits(x) * 2.0**f)
        tolerance = 1 if use_avgpool else 0
        assert np.abs(hw_codes - sw_codes).max() <= tolerance

    @given(spec=net_specs())
    @settings(max_examples=10, deadline=None)
    def test_deploy_roundtrip_preserves_execution(self, spec, tmp_path_factory):
        from repro.hw.export import load_deployed, save_deployed

        seed, n_blocks, channels, use_avgpool, scale = spec
        rng = np.random.default_rng(seed)
        net = build_random_net(rng, n_blocks, channels, use_avgpool)
        calib = rng.normal(scale=scale, size=(8, 3, 8, 8))
        dep = MFDFPNetwork.from_float(net, calib).deploy()
        path = tmp_path_factory.mktemp("dep") / "net.npz"
        save_deployed(dep, path)
        loaded = load_deployed(path)
        x = rng.normal(scale=scale, size=(4, 3, 8, 8))
        assert np.array_equal(execute_deployed(dep, x), execute_deployed(loaded, x))


class TestSaturationBehaviour:
    @pytest.mark.parametrize("scale", [10.0, 100.0])
    def test_out_of_calibration_inputs_saturate_gracefully(self, rng, scale):
        """Inputs far beyond calibration range saturate, never overflow."""
        net = build_random_net(rng, 2, [4, 4], use_avgpool=False)
        calib = rng.normal(size=(8, 3, 8, 8))  # unit-scale calibration
        mf = MFDFPNetwork.from_float(net, calib)
        dep = mf.deploy()
        x = rng.normal(scale=scale, size=(4, 3, 8, 8))
        codes = execute_deployed(dep, x, check_widths=True)
        assert np.abs(codes).max() <= 127
