"""End-to-end integration: the full paper pipeline on the surrogate.

float training -> Algorithm 1 (quantize, fine-tune, distill) -> deploy ->
bit-accurate accelerator inference -> hardware metrics.
"""

import numpy as np
import pytest

from repro.core import Ensemble, MFDFPConfig, run_algorithm1
from repro.hw import Accelerator, AcceleratorConfig
from repro.nn import error_rate
from repro.report import memory_report


@pytest.fixture(scope="module")
def pipeline_result(trained_small_net, small_data):
    train, test = small_data
    config = MFDFPConfig(phase1_epochs=4, phase2_epochs=4, lr=5e-3, batch_size=32)
    result = run_algorithm1(
        trained_small_net.clone(), train, test, train.x[:128], config,
        rng=np.random.default_rng(0),
    )
    return result, train, test


class TestFullPipeline:
    def test_quantized_accuracy_close_to_float(self, pipeline_result):
        result, _, test = pipeline_result
        assert result.final_val_error <= result.float_val_error + 0.12

    def test_deployed_network_runs_on_accelerator(self, pipeline_result):
        result, _, test = pipeline_result
        dep = result.mfdfp.deploy()
        acc = Accelerator(AcceleratorConfig(precision="mfdfp"))
        logits = acc.run(dep, test.x[:64])
        hw_err = 1.0 - float((logits.argmax(1) == test.y[:64]).mean())
        sw_err = error_rate(result.mfdfp.net, test.subset(np.arange(64)))
        # hardware inference tracks the software quantized simulation
        assert abs(hw_err - sw_err) <= 0.08

    def test_hardware_metrics_consistent(self, pipeline_result):
        result, _, _ = pipeline_result
        dep = result.mfdfp.deploy()
        fp = Accelerator(AcceleratorConfig(precision="fp32"))
        mf = Accelerator(AcceleratorConfig(precision="mfdfp"))
        float_net = result.mfdfp.net
        assert mf.energy_uj(dep) < 0.15 * fp.energy_uj(float_net)
        assert mf.latency_us(dep) <= fp.latency_us(float_net)

    def test_memory_footprint_8x(self, pipeline_result):
        result, _, _ = pipeline_result
        report = memory_report(result.mfdfp.net)
        assert report.compression_ratio == 8.0

    def test_figure3_error_ordering(self, pipeline_result):
        """Phase-2 (student-teacher) final error must not exceed the raw
        post-quantization error, and the curve must be recorded for both
        phases — the structure Figure 3 plots."""
        result, _, _ = pipeline_result
        curve = result.error_curve()
        phases = {p for _, _, p in curve}
        assert phases == {"phase1", "phase2"}
        final_phase2 = curve[-1][1]
        first_phase1 = curve[0][1]
        assert final_phase2 <= first_phase1 + 0.05


class TestEnsembleIntegration:
    def test_two_member_ensemble_runs_end_to_end(self, trained_small_net, small_data):
        train, test = small_data
        rng = np.random.default_rng(3)
        member_nets = [trained_small_net.clone(), trained_small_net.clone()]
        for p in member_nets[1].params:
            p.data = p.data + rng.normal(scale=0.02, size=p.data.shape)
        config = MFDFPConfig(phase1_epochs=2, phase2_epochs=2, lr=5e-3, batch_size=32)
        results = [
            run_algorithm1(net, train, test, train.x[:128], config, rng=rng)
            for net in member_nets
        ]
        ensemble = Ensemble([r.mfdfp for r in results])
        acc_ens = ensemble.accuracy(test)
        accs = [1 - r.final_val_error for r in results]
        assert acc_ens >= min(accs) - 0.05

    def test_ensemble_hw_parallel_latency(self, trained_small_net, small_data):
        """2-PU accelerator runs the ensemble at single-network latency but
        roughly double power (Table 1/2 structure)."""
        single = Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=1))
        double = Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=2))
        net = trained_small_net
        assert single.latency_us(net) == double.latency_us(net)
        assert 1.8 < double.power_mw / single.power_mw <= 2.0
