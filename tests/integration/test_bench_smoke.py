"""Tier-1 smoke gate over the benchmark suite.

The benchmark files are pytest suites invoked by explicit path (they do
not match the default ``test_*.py`` collection pattern), so nothing in
the plain tier-1 run would notice if one of them stopped importing or
its fixtures rotted — including the bit-identity acceptance gates of the
engine, serving, and campaign benchmarks.  This test runs every
``benchmarks/bench_*.py`` in its ``--quick`` smoke mode (tiny fixtures,
statistical/timing gates skipped, ``--benchmark-disable``) in a
subprocess and requires a clean pass.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_FILES = sorted((REPO_ROOT / "benchmarks").glob("bench_*.py"))


def test_benchmark_suite_is_discovered():
    """A rename that hides benchmarks from this gate must fail loudly."""
    assert len(BENCH_FILES) >= 16
    names = {p.name for p in BENCH_FILES}
    assert "bench_engine_throughput.py" in names
    assert "bench_campaign_throughput.py" in names
    assert "bench_serve_concurrency.py" in names
    assert "bench_artifact_io.py" in names
    assert "bench_scaleout.py" in names
    assert "bench_chaos_recovery.py" in names
    assert "bench_explore.py" in names


@pytest.mark.parametrize("bench", BENCH_FILES, ids=lambda p: p.name)
def test_benchmark_quick_smoke(bench):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(bench),
            "--quick",
            "--benchmark-disable",
            "-q",
            "-x",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{bench.name} failed in --quick smoke mode:\n"
        f"{proc.stdout[-3000:]}\n{proc.stderr[-2000:]}"
    )
