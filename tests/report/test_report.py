"""Report generation: table rows, formatting, memory accounting."""

import numpy as np
import pytest

from repro.hw import Accelerator, AcceleratorConfig
from repro.report import (
    format_table,
    memory_report,
    table1_rows,
    table2_row,
    table3_rows,
)
from repro.zoo import alexnet, cifar10_full


@pytest.fixture(scope="module")
def t1():
    return table1_rows()


class TestTable1:
    def test_three_designs(self, t1):
        assert [r.design for r in t1] == [
            "Floating-point(32,32)",
            "Proposed MF-DFP(8,4)",
            "Ens. MF-DFP(8,4)",
        ]

    def test_baseline_row_matches_paper(self, t1):
        fp = t1[0]
        assert fp.area_mm2 == pytest.approx(fp.paper_area_mm2, rel=1e-6)
        assert fp.power_mw == pytest.approx(fp.paper_power_mw, rel=1e-6)

    def test_mfdfp_row_close_to_paper(self, t1):
        mf = t1[1]
        assert mf.area_mm2 == pytest.approx(mf.paper_area_mm2, rel=0.15)
        assert mf.power_mw == pytest.approx(mf.paper_power_mw, rel=0.15)

    def test_savings_ordering(self, t1):
        """Single MF-DFP saves more than the ensemble; both save a lot."""
        _, mf, ens = t1
        assert mf.area_saving_pct > ens.area_saving_pct > 70.0
        assert mf.power_saving_pct > ens.power_saving_pct > 75.0


class TestTable2Row:
    def test_energy_saving_computed_vs_baseline(self):
        net = cifar10_full()
        fp = Accelerator(AcceleratorConfig(precision="fp32"))
        mf = Accelerator(AcceleratorConfig(precision="mfdfp"))
        base_energy = fp.energy_uj(net)
        row = table2_row("CIFAR-10", "MF-DFP (8,4)", 0.8077, mf, net, base_energy)
        assert row.accuracy_pct == pytest.approx(80.77)
        assert 87.0 < row.energy_saving_pct < 92.0

    def test_baseline_row_has_zero_saving(self):
        net = cifar10_full()
        fp = Accelerator(AcceleratorConfig(precision="fp32"))
        row = table2_row("CIFAR-10", "Floating-Point", 0.8153, fp, net)
        assert row.energy_saving_pct == 0.0


class TestTable3:
    def test_cifar_row_matches_paper(self):
        rows = table3_rows([cifar10_full()])
        row = rows[0]
        assert row.float_mb == pytest.approx(0.3417, abs=5e-5)
        assert row.mfdfp_mb == pytest.approx(0.0428, abs=5e-4)
        assert row.paper_float_mb == 0.3417

    def test_alexnet_row_matches_paper(self):
        row = table3_rows([alexnet()])[0]
        assert row.float_mb == pytest.approx(237.95, abs=0.01)
        assert row.mfdfp_mb == pytest.approx(29.75, abs=0.02)

    def test_unknown_network_gets_nan_reference(self, rng):
        from repro.zoo import cifar10_small

        row = table3_rows([cifar10_small()])[0]
        assert np.isnan(row.paper_float_mb)


class TestMemoryReport:
    def test_exact_8x_compression(self):
        report = memory_report(cifar10_full())
        assert report.compression_ratio == 8.0

    def test_ensemble_doubles(self):
        report = memory_report(cifar10_full(), ensemble_size=2)
        assert report.ensemble_mb == pytest.approx(2 * report.mfdfp_mb)

    def test_parameter_count_forwarded(self):
        assert memory_report(cifar10_full()).parameters == 89_578


class TestFormatting:
    def test_format_contains_headers_and_values(self, t1):
        text = format_table(t1, title="Table 1")
        assert "Table 1" in text
        assert "area_mm2" in text
        assert "16.52" in text

    def test_empty_rows(self):
        assert format_table([], title="empty") == "empty"

    def test_columns_aligned(self, t1):
        lines = format_table(t1).splitlines()
        assert len({len(l) for l in lines[0:2]}) == 1  # header and rule align
