"""Fork/spawn safety of engine globals + shared-plane serving invariants.

Regression tests for the process backend's core correctness claims:
``lru_cache`` gather tables and the shared EngineCache behave in
children under *both* start methods, attached planes are frozen and
mapped once per process, and workers serving from shared memory perform
zero LUT decodes of their own.
"""

import functools
import os

import numpy as np
import pytest

from repro.core.engine import BatchedEngine, engine_fingerprint
from repro.core.mfdfp import MFDFPNetwork
from repro.parallel import ProcessPoolRunner, SharedEngineProxy, SharedWeightArena
from repro.parallel import worker as worker_mod
from repro.zoo import cifar10_small


@pytest.fixture(scope="module")
def deployed():
    rng = np.random.default_rng(11)
    net = cifar10_small(size=16, rng=rng)
    calib = rng.normal(scale=0.8, size=(16, 3, 16, 16)).astype(np.float32)
    mf = MFDFPNetwork.from_float(net, calib)
    mf.calibrate_bias_to_accumulator_grid()
    return mf.deploy()


@pytest.fixture
def prefix():
    return f"repro-test-{os.getpid()}"


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_engine_globals_safe_in_children(deployed, prefix, start_method):
    """Gather tables rebuild frozen+memoized and the cache dedups, per child."""
    with SharedWeightArena(prefix=prefix) as arena:
        spec = arena.publish(deployed)
        with ProcessPoolRunner(
            1, mp_context=start_method, initializer=worker_mod.mark_decode_baseline
        ) as runner:
            report = runner.call(worker_mod.runtime_check, spec=spec, deployed=deployed)

    assert report["pid"] != os.getpid()
    assert report["im2col_frozen"] and report["im2col_memoized"]
    assert report["pool_frozen"] and report["pool_memoized"]
    assert report["cache_same_engine"]
    assert report["planes_frozen"] and report["attach_memoized"]
    assert report["attached_segments"] == 1


def test_fork_and_spawn_children_agree_with_host(deployed, prefix):
    """Same digest from the host engine and from children of both kinds."""
    host = BatchedEngine(deployed)
    probe = np.arange(int(np.prod(host.input_shape)), dtype=np.float32)
    probe = (probe % 7 - 3).reshape((1, *host.input_shape)) / 4.0
    host_digest = host.run(probe).tobytes().hex()[:32]

    digests = {}
    with SharedWeightArena(prefix=prefix) as arena:
        spec = arena.publish(deployed)
        for method in ("fork", "spawn"):
            with ProcessPoolRunner(1, mp_context=method) as runner:
                report = runner.call(worker_mod.runtime_check, spec=spec, deployed=deployed)
                digests[method] = report["digest"]
    assert digests == {"fork": host_digest, "spawn": host_digest}


class TestSharedEngineProxy:
    def test_proxy_matches_host_and_decodes_nothing(self, deployed, prefix):
        host = BatchedEngine(deployed)
        rng = np.random.default_rng(3)
        with SharedWeightArena(prefix=prefix) as arena:
            spec = arena.publish(deployed)
            with ProcessPoolRunner(
                2, initializer=worker_mod.mark_decode_baseline
            ) as runner:
                proxy = SharedEngineProxy(runner, deployed, spec)
                assert proxy.fingerprint == engine_fingerprint(deployed)
                for _ in range(6):  # enough requests to touch both workers
                    x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
                    assert np.array_equal(proxy.run(x), host.run(x))
                stats = [
                    runner.submit(worker_mod.worker_stats).result(timeout=30)
                    for _ in range(2)
                ]
        # Workers that served did so from the shared planes: a model is
        # mapped at most once per process and never LUT-decoded there.
        served = [s for s in stats if s["models"]]
        assert served, "no worker reported having installed the model"
        for s in served:
            assert s["attached_segments"] == 1
            assert s["plane_decodes"] == 0

    def test_proxy_recovers_on_fresh_worker(self, deployed, prefix):
        """A worker that never saw install_model still serves via the fallback."""
        with SharedWeightArena(prefix=prefix) as arena:
            spec = arena.publish(deployed)
            with ProcessPoolRunner(1) as runner:
                proxy = SharedEngineProxy(runner, deployed, spec)
                x = np.random.default_rng(4).normal(size=(1, 3, 16, 16)).astype(np.float32)
                out = proxy.run(x)
        assert np.array_equal(out, BatchedEngine(deployed).run(x))

    def test_install_is_idempotent_per_worker(self, deployed, prefix):
        with SharedWeightArena(prefix=prefix) as arena:
            spec = arena.publish(deployed)
            with ProcessPoolRunner(1) as runner:
                install = functools.partial(worker_mod.install_model, deployed, spec)
                fp1 = runner.call(install)
                fp2 = runner.call(install)
                stats = runner.call(worker_mod.worker_stats)
        assert fp1 == fp2 == engine_fingerprint(deployed)
        assert stats["models"] == [fp1]
        assert stats["attached_segments"] == 1
