"""ProcessPoolRunner: ordering, typed failure, crash detection, lifecycle."""

import functools
import time

import pytest

from repro.parallel import PoolClosedError, ProcessPoolRunner, WorkerCrashedError
from repro.parallel import worker as worker_mod


@pytest.fixture
def pool():
    runner = ProcessPoolRunner(2)
    yield runner
    runner.close()


class TestBasics:
    def test_eager_start(self, pool):
        # Workers exist before any task: forking happened in the
        # constructor, not lazily from some serving thread later.
        assert pool.alive_workers() == 2

    def test_call_roundtrip(self, pool):
        assert pool.call(worker_mod.echo, {"answer": 42}) == {"answer": 42}

    def test_map_preserves_input_order(self, pool):
        fns = [functools.partial(worker_mod.echo, i) for i in range(20)]
        assert pool.map(fns) == list(range(20))

    def test_task_error_is_the_original_type(self, pool):
        with pytest.raises(ValueError, match="kaboom"):
            pool.call(worker_mod.fail, "kaboom")
        # The pool survives an ordinary task exception.
        assert pool.call(worker_mod.echo, 1) == 1

    def test_map_propagates_first_error(self, pool):
        fns = [functools.partial(worker_mod.echo, 0), functools.partial(worker_mod.fail, "pt")]
        with pytest.raises(ValueError, match="pt"):
            pool.map(fns)

    def test_unpicklable_argument_raises_synchronously(self, pool):
        with pytest.raises(Exception):
            pool.submit(worker_mod.echo, lambda: None)

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolRunner(0)


class TestCrash:
    def test_killed_worker_surfaces_typed_error(self):
        runner = ProcessPoolRunner(1)
        try:
            with pytest.raises(WorkerCrashedError):
                runner.call(worker_mod.crash)
            assert runner.broken
        finally:
            runner.close()

    def test_sigkill_mid_task_fails_pending_futures(self):
        runner = ProcessPoolRunner(1)
        try:
            victim = runner._processes[0]
            future = runner.submit(worker_mod.hang, 60.0)
            # Let the worker pick the task up, then kill it from outside
            # — the OOM-killer scenario, not a Python-level exit.
            time.sleep(0.3)
            victim.terminate()  # SIGTERM; no result is ever reported
            with pytest.raises(WorkerCrashedError):
                future.result(timeout=30)
            # A broken pool refuses new work with the same typed error.
            with pytest.raises(WorkerCrashedError):
                runner.submit(worker_mod.echo, 1)
        finally:
            runner.close()


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_submits(self):
        runner = ProcessPoolRunner(1)
        runner.close()
        runner.close()
        with pytest.raises(PoolClosedError):
            runner.submit(worker_mod.echo, 1)

    def test_context_manager_closes(self):
        with ProcessPoolRunner(1) as runner:
            assert runner.call(worker_mod.echo, "x") == "x"
        with pytest.raises(PoolClosedError):
            runner.submit(worker_mod.echo, 1)

    def test_spawn_context(self):
        with ProcessPoolRunner(1, mp_context="spawn") as runner:
            assert runner.call(worker_mod.echo, [1, 2]) == [1, 2]
