"""SharedWeightArena: segment lifecycle, reclamation, frozen attach views."""

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.engine import BatchedEngine, engine_fingerprint
from repro.core.mfdfp import MFDFPNetwork
from repro.parallel import ArenaClosedError, PoolError, SharedWeightArena, attach_planes
from repro.parallel.arena import _ATTACHED
from repro.zoo import cifar10_small


@pytest.fixture(scope="module")
def deployed():
    rng = np.random.default_rng(5)
    net = cifar10_small(size=16, rng=rng)
    calib = rng.normal(scale=0.8, size=(16, 3, 16, 16)).astype(np.float32)
    mf = MFDFPNetwork.from_float(net, calib)
    mf.calibrate_bias_to_accumulator_grid()
    return mf.deploy()


@pytest.fixture
def prefix():
    # Unique per test process so parallel CI runs never collide.
    return f"repro-test-{os.getpid()}"


class TestPublish:
    def test_publish_is_idempotent(self, deployed, prefix):
        with SharedWeightArena(prefix=prefix) as arena:
            spec = arena.publish(deployed)
            assert arena.publish(deployed) is spec
            assert len(arena) == 1 and arena.created == 1
            assert spec.fingerprint == engine_fingerprint(deployed)
            assert spec.segment == arena.segment_name(spec.fingerprint)

    def test_segment_holds_every_weighted_op(self, deployed, prefix):
        weighted = [
            i for i, op in enumerate(deployed.ops)
            if op.kind in ("conv", "dense") and op.weight_codes is not None
        ]
        with SharedWeightArena(prefix=prefix) as arena:
            spec = arena.publish(deployed)
            assert [p.op_index for p in spec.planes] == weighted
            offsets = [p.offset for p in spec.planes]
            assert offsets == sorted(offsets) and all(o % 8 == 0 for o in offsets)

    def test_closed_arena_refuses_publish(self, deployed, prefix):
        arena = SharedWeightArena(prefix=prefix)
        arena.close()
        with pytest.raises(ArenaClosedError):
            arena.publish(deployed)

    def test_closed_arena_error_is_typed(self, deployed, prefix):
        """Regression: the closed-arena raise is part of the parallel
        taxonomy (catchable as PoolError) while staying a RuntimeError
        for pre-taxonomy callers."""
        arena = SharedWeightArena(prefix=prefix)
        arena.close()
        with pytest.raises(PoolError):
            arena.publish(deployed)
        assert issubclass(ArenaClosedError, RuntimeError)


class TestAttach:
    def test_attached_views_frozen_and_engine_identical(self, deployed, prefix):
        reference = BatchedEngine(deployed)
        x = np.random.default_rng(0).normal(size=(4, 3, 16, 16)).astype(np.float32)
        with SharedWeightArena(prefix=prefix) as arena:
            spec = arena.publish(deployed)
            views = attach_planes(spec)
            assert all(not v.flags.writeable for v in views.values())
            assert attach_planes(spec) is views  # memoized per process
            shared_engine = BatchedEngine(deployed, weight_planes=views)
            assert shared_engine.shared_planes
            assert np.array_equal(shared_engine.run(x), reference.run(x))
            _ATTACHED.pop(spec.segment)[0].close()

    def test_close_unlinks_segments(self, deployed, prefix):
        arena = SharedWeightArena(prefix=prefix)
        spec = arena.publish(deployed)
        arena.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=spec.segment)


class TestReclamation:
    def test_undersized_stale_segment_is_reclaimed(self, deployed, prefix):
        with SharedWeightArena(prefix=prefix) as arena:
            name = arena.segment_name(engine_fingerprint(deployed))
            # A dead publisher's leftover, too small for this model
            # (planes total far exceeds one page, so the page-rounded
            # stale size still comes up short).
            stale = shared_memory.SharedMemory(name=name, create=True, size=8)
            stale.close()
            spec = arena.publish(deployed)
            assert arena.reclaimed == 1 and arena.created == 1
            views = attach_planes(spec)
            assert views  # segment is real and mapped
            _ATTACHED.pop(spec.segment)[0].close()

    def test_full_size_leftover_is_adopted_and_rewritten(self, deployed, prefix):
        reference = BatchedEngine(deployed)
        x = np.random.default_rng(1).normal(size=(3, 3, 16, 16)).astype(np.float32)
        probe = SharedWeightArena(prefix=prefix)
        total = probe.publish(deployed).total_bytes
        probe.close()
        with SharedWeightArena(prefix=prefix) as arena:
            name = arena.segment_name(engine_fingerprint(deployed))
            leftover = shared_memory.SharedMemory(name=name, create=True, size=total)
            leftover.buf[:] = b"\xff" * len(leftover.buf)  # garbage contents
            leftover.close()
            spec = arena.publish(deployed)
            assert arena.adopted == 1 and arena.created == 0
            views = attach_planes(spec)
            engine = BatchedEngine(deployed, weight_planes=views)
            # Adoption rewrote the planes: garbage did not survive.
            assert np.array_equal(engine.run(x), reference.run(x))
            _ATTACHED.pop(spec.segment)[0].close()
