"""ArtifactStore layout, versioning, and the serving registry cold start."""

import numpy as np
import pytest

from repro.core.engine import engine_fingerprint
from repro.core.mfdfp import deploy_calibrated
from repro.io import ArtifactError, ArtifactStore
from repro.serve import ModelRegistry, UnknownModelError
from repro.zoo import cifar10_small, publish_deployables


def tiny_deployed(seed=0, width=4):
    net = cifar10_small(size=8, width=width, rng=np.random.default_rng(seed), dtype=np.float64)
    calib = np.random.default_rng(100 + seed).normal(size=(16, 3, 8, 8))
    return deploy_calibrated(net, calib)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestVersioning:
    def test_publish_and_load(self, store):
        deployed = tiny_deployed(0)
        assert store.publish_deployed("m", deployed) == 1
        loaded = store.load_deployed("m")
        assert engine_fingerprint(loaded) == engine_fingerprint(deployed)
        assert store.model_names() == ["m"]
        assert store.versions("m") == [1]

    def test_identical_content_is_idempotent(self, store):
        deployed = tiny_deployed(0)
        assert store.publish_deployed("m", deployed) == 1
        assert store.publish_deployed("m", tiny_deployed(0)) == 1  # same content, same version
        assert store.versions("m") == [1]

    def test_changed_content_appends_version(self, store):
        store.publish_deployed("m", tiny_deployed(0))
        v2 = store.publish_deployed("m", tiny_deployed(1))
        assert v2 == 2
        assert store.versions("m") == [1, 2]
        # default load resolves the newest version
        assert engine_fingerprint(store.load_deployed("m")) == engine_fingerprint(
            tiny_deployed(1)
        )
        # older versions stay addressable
        assert engine_fingerprint(store.load_deployed("m", version=1)) == engine_fingerprint(
            tiny_deployed(0)
        )

    def test_fingerprint_reads_header_only(self, store):
        deployed = tiny_deployed(0)
        store.publish_deployed("m", deployed)
        assert store.fingerprint("m") == engine_fingerprint(deployed)

    def test_unknown_model_rejected(self, store):
        with pytest.raises(ArtifactError, match="no model"):
            store.load_deployed("ghost")
        with pytest.raises(ArtifactError, match="no version"):
            store.publish_deployed("m", tiny_deployed(0))
            store.load_deployed("m", version=9)

    def test_invalid_names_rejected(self, store):
        for bad in ("", "../escape", "a/b", "tiny\n", ".hidden"):
            with pytest.raises(ValueError):
                store.publish_deployed(bad, tiny_deployed(0))
        with pytest.raises(ValueError):
            store.checkpoint_dir("../escape")

    def test_invalid_names_raise_from_artifact_taxonomy(self, store):
        """Regression: name validation raises ArtifactError (still a
        ValueError for older callers), so store users catching the io
        taxonomy see bad names too."""
        with pytest.raises(ArtifactError, match="invalid model name"):
            store.publish_deployed("../escape", tiny_deployed(0))
        with pytest.raises(ArtifactError, match="invalid run name"):
            store.checkpoint_dir("a/b")

    def test_open_missing_store_readonly(self, tmp_path):
        with pytest.raises(ArtifactError, match="not a repro artifact store"):
            ArtifactStore(tmp_path / "nope", create=False)
        assert not (tmp_path / "nope").exists()

    def test_reopen_existing(self, store):
        store.publish_deployed("m", tiny_deployed(0))
        again = ArtifactStore(store.root, create=False)
        assert again.model_names() == ["m"]

    def test_checkpointer_accessors(self, store):
        ck = store.checkpointer("run1", every=2)
        assert ck.every == 2
        assert ck.directory == store.root / "checkpoints" / "run1"
        pk = store.pipeline_checkpointer("run2")
        assert pk.directory == store.root / "checkpoints" / "run2"
        assert store.runs() == []  # nothing written yet


class TestRegistryColdStart:
    def test_from_store_serves_identical_engines(self, store):
        deployed = tiny_deployed(0)
        store.publish_deployed("tiny", deployed)
        registry = ModelRegistry.from_store(store)
        assert registry.names() == ["tiny"]
        # Engine fingerprints of disk-loaded artifacts match the
        # in-memory build, so cold and warm servers compile identically.
        assert engine_fingerprint(registry.deployed("tiny")) == engine_fingerprint(deployed)
        x = np.random.default_rng(5).normal(size=(4, 3, 8, 8))
        warm = ModelRegistry()
        warm.register("tiny", lambda: tiny_deployed(0))
        assert np.array_equal(registry.engine("tiny").run(x), warm.engine("tiny").run(x))

    def test_from_store_accepts_path(self, store):
        store.publish_deployed("tiny", tiny_deployed(0))
        registry = ModelRegistry.from_store(store.root)
        assert registry.names() == ["tiny"]

    def test_from_store_unknown_name_rejected(self, store):
        store.publish_deployed("tiny", tiny_deployed(0))
        with pytest.raises(UnknownModelError):
            ModelRegistry.from_store(store, names=["ghost"])

    def test_from_store_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ArtifactError):
            ModelRegistry.from_store(tmp_path / "missing")

    def test_lazy_load(self, store, monkeypatch):
        """Artifacts load on first use, not at registry construction."""
        store.publish_deployed("tiny", tiny_deployed(0))
        calls = []
        original = ArtifactStore.load_newest_verified

        def counting(self, name):
            calls.append(name)
            return original(self, name)

        # Floating (unpinned) builds resolve through load_newest_verified.
        monkeypatch.setattr(ArtifactStore, "load_newest_verified", counting)
        registry = ModelRegistry.from_store(store)
        assert calls == []
        registry.deployed("tiny")
        registry.deployed("tiny")
        assert calls == ["tiny"]  # memoized after the first load


class TestZooPublishing:
    def test_publish_deployables_real_builders(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        published = publish_deployables(store)
        assert set(published) == {"cifar10_full", "alexnet"}
        assert all(v == 1 for v in published.values())
        # Content-addressed: a second export writes nothing new.
        assert publish_deployables(store) == published
        registry = ModelRegistry.from_store(store)
        assert registry.names() == ["alexnet", "cifar10_full"]
        for name in registry.names():
            assert registry.engine(name).input_shape == registry.deployed(name).input_shape[0:3]

    def test_publish_unknown_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown deployable"):
            publish_deployables(ArtifactStore(tmp_path / "store"), ["ghost"])
