"""Store corruption: quarantine-then-fallback semantics, plus the property.

The contract under test (docs/robustness.md): a version file that fails
verify-on-load is *moved* to ``quarantine/`` with a reason sidecar,
direct loads of it raise :class:`QuarantinedArtifactError`, and
newest-version resolution silently falls back to the newest version
that still verifies.  The Hypothesis property at the bottom hammers the
whole path with random byte damage: whatever the corruption, the
outcome is quarantine-with-fallback or a bit-identical load — never a
raw ``OSError``/``zipfile``/``numpy`` exception.
"""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import engine_fingerprint
from repro.core.mfdfp import deploy_calibrated
from repro.io import (
    ArtifactError,
    ArtifactStore,
    QuarantinedArtifactError,
)
from repro.serve import ModelRegistry
from repro.zoo import cifar10_small


def tiny_deployed(seed=0):
    net = cifar10_small(size=8, width=4, rng=np.random.default_rng(seed), dtype=np.float64)
    calib = np.random.default_rng(100 + seed).normal(size=(16, 3, 8, 8))
    return deploy_calibrated(net, calib)


@pytest.fixture
def store(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.publish_deployed("m", tiny_deployed(0))
    store.publish_deployed("m", tiny_deployed(1))
    return store


def corrupt(path: Path, keep: float = 0.5) -> None:
    blob = path.read_bytes()
    path.write_bytes(blob[: int(len(blob) * keep)])


class TestQuarantine:
    def test_newest_resolution_falls_back_and_quarantines(self, store):
        corrupt(store.model_path("m", 2))
        version, loaded = store.load_newest_verified("m")
        assert version == 1
        assert engine_fingerprint(loaded) == engine_fingerprint(tiny_deployed(0))
        # The bad file left the resolvable tree entirely.
        assert store.versions("m") == [1]
        assert store.quarantined_versions("m") == [2]
        assert store.latest_version("m") == 1

    def test_default_load_uses_the_fallback(self, store):
        corrupt(store.model_path("m", 2))
        loaded = store.load_deployed("m")
        assert engine_fingerprint(loaded) == engine_fingerprint(tiny_deployed(0))

    def test_reason_sidecar_records_the_failure(self, store):
        corrupt(store.model_path("m", 2))
        store.load_deployed("m")
        quarantined = store.quarantine_dir("m") / "v0002.npz"
        assert quarantined.is_file()
        reason = json.loads(quarantined.with_suffix(".reason.json").read_text())
        assert reason["model"] == "m" and reason["version"] == 2
        assert reason["error"]

    def test_direct_load_of_quarantined_version_is_typed(self, store):
        corrupt(store.model_path("m", 2))
        store.load_deployed("m")  # triggers the quarantine
        with pytest.raises(QuarantinedArtifactError) as excinfo:
            store.load_deployed("m", version=2)
        err = excinfo.value
        assert (err.name, err.version) == ("m", 2)
        assert err.path.is_file()

    def test_explicit_version_load_quarantines_on_failure(self, store):
        corrupt(store.model_path("m", 1))
        with pytest.raises(QuarantinedArtifactError) as excinfo:
            store.load_deployed("m", version=1)
        assert excinfo.value.version == 1
        assert store.quarantined_versions("m") == [1]
        # The newest version is untouched and still resolves.
        assert store.latest_verified_version("m") == 2

    def test_all_versions_corrupt_is_a_typed_dead_end(self, store):
        corrupt(store.model_path("m", 1))
        corrupt(store.model_path("m", 2))
        with pytest.raises(ArtifactError, match="every published version"):
            store.load_newest_verified("m")
        assert store.latest_verified_version("m") is None
        assert store.quarantined_versions("m") == [1, 2]

    def test_publish_over_rotted_latest_quarantines_and_moves_on(self, store):
        corrupt(store.model_path("m", 2))
        v3 = store.publish_deployed("m", tiny_deployed(1))
        assert v3 == 3
        assert store.versions("m") == [1, 3]
        assert store.quarantined_versions("m") == [2]
        assert engine_fingerprint(store.load_deployed("m")) == engine_fingerprint(
            tiny_deployed(1)
        )

    def test_publish_never_reissues_a_quarantined_number(self, store):
        # Quarantine v2 first (the file is MOVED out of the model dir),
        # then publish: the fresh artifact must become v3, not a second
        # "v2" that would make the quarantine record ambiguous.
        corrupt(store.model_path("m", 2))
        store.load_deployed("m")
        assert store.quarantined_versions("m") == [2]
        v3 = store.publish_deployed("m", tiny_deployed(1))
        assert v3 == 3
        assert store.versions("m") == [1, 3]
        assert store.quarantined_versions("m") == [2]
        with pytest.raises(QuarantinedArtifactError):
            store.load_deployed("m", 2)
        assert store.latest_verified_version("m") == 3

    def test_requarantine_of_same_number_does_not_clobber(self, store):
        corrupt(store.model_path("m", 2))
        store.load_deployed("m")
        # Republish fresh content as a new v2... by restoring the layout:
        (store.root / "models" / "m" / "v0002.npz").write_bytes(
            (store.root / "models" / "m" / "v0001.npz").read_bytes()
        )
        corrupt(store.model_path("m", 2))
        store.load_deployed("m")
        names = sorted(p.name for p in store.quarantine_dir("m").glob("*.npz"))
        assert names == ["v0002.1.npz", "v0002.npz"]

    def test_registry_cold_start_survives_a_rotted_newest(self, store):
        corrupt(store.model_path("m", 2))
        registry = ModelRegistry.from_store(store)
        engine = registry.engine("m")
        reference = registry_reference_engine()
        batch = np.random.default_rng(7).normal(scale=0.5, size=(4, 3, 8, 8))
        assert np.array_equal(engine.run(batch), reference.run(batch))


def registry_reference_engine():
    from repro.core.engine import BatchedEngine

    return BatchedEngine(tiny_deployed(0))


# -- the corruption property ------------------------------------------------

_BLOBS: dict = {}


def _blobs():
    """Publish once; each Hypothesis example replays the bytes into a
    fresh store directory (function-scoped tmp fixtures don't mix with
    ``@given``)."""
    if not _BLOBS:
        with tempfile.TemporaryDirectory() as td:
            store = ArtifactStore(Path(td) / "store")
            store.publish_deployed("m", tiny_deployed(0))
            store.publish_deployed("m", tiny_deployed(1))
            _BLOBS["v1"] = store.model_path("m", 1).read_bytes()
            _BLOBS["v2"] = store.model_path("m", 2).read_bytes()
    _BLOBS["fp1"] = engine_fingerprint(tiny_deployed(0))
    _BLOBS["fp2"] = engine_fingerprint(tiny_deployed(1))
    return _BLOBS


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_random_corruption_always_quarantines_or_loads_identically(seed):
    """Any byte damage to the newest version file ends one of two ways:
    a bit-identical load (damage hit slack bytes) or quarantine plus
    fallback to the intact older version — never a raw exception."""
    blobs = _blobs()
    rng = np.random.default_rng(seed)
    corrupted = bytearray(blobs["v2"])
    if rng.integers(0, 2):  # flip a handful of bytes
        for _ in range(int(rng.integers(1, 9))):
            pos = int(rng.integers(0, len(corrupted)))
            corrupted[pos] ^= int(rng.integers(1, 256))
    else:  # or tear the tail off
        corrupted = corrupted[: int(len(corrupted) * float(rng.uniform(0.0, 0.999)))]
    with tempfile.TemporaryDirectory() as td:
        store = ArtifactStore(Path(td) / "store")
        model_dir = store.root / "models" / "m"
        model_dir.mkdir(parents=True)
        (model_dir / "v0001.npz").write_bytes(blobs["v1"])
        (model_dir / "v0002.npz").write_bytes(bytes(corrupted))
        version, loaded = store.load_newest_verified("m")
        if version == 2:
            # The damage slipped past every check, so it must not have
            # touched executable content.
            assert engine_fingerprint(loaded) == blobs["fp2"]
            assert store.quarantined_versions("m") == []
        else:
            assert version == 1
            assert engine_fingerprint(loaded) == blobs["fp1"]
            assert store.quarantined_versions("m") == [2]
            with pytest.raises(QuarantinedArtifactError):
                store.load_deployed("m", version=2)
