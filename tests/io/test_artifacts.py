"""Unit tests of the artifact container: codecs, validation, typed errors."""

import json

import numpy as np
import pytest

from repro.core.engine import engine_fingerprint, execute_deployed
from repro.core.mfdfp import MFDFPNetwork, deploy_calibrated
from repro.io import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactSchemaError,
    ArtifactVersionError,
    load_deployed,
    load_mfdfp_result,
    load_network_into,
    load_network_state,
    load_optimizer_state,
    read_container,
    save_deployed,
    save_mfdfp_result,
    save_network,
    save_optimizer,
    write_container,
)
from repro.io.artifacts import MAGIC, plan_from_meta, plan_to_meta
from repro.nn import SGD
from repro.zoo import cifar10_small


@pytest.fixture
def tiny_net(rng):
    return cifar10_small(size=8, width=4, rng=np.random.default_rng(3), dtype=np.float32)


@pytest.fixture
def deployed(rng):
    net = cifar10_small(size=8, width=4, rng=np.random.default_rng(3), dtype=np.float64)
    return deploy_calibrated(net, rng.normal(size=(16, 3, 8, 8)))


def _mangle_header(path, out, mutate):
    """Rewrite an artifact with its JSON header transformed by ``mutate``."""
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files if k != "__header__"}
        header = json.loads(bytes(data["__header__"]).decode())
    header = mutate(header)
    np.savez(out, __header__=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8), **arrays)
    return out


class TestContainer:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "c.npz"
        write_container(path, "network", {"a": 1}, {"x": np.arange(5)})
        header, arrays = read_container(path, expect_kind="network")
        assert header["magic"] == MAGIC
        assert header["meta"] == {"a": 1}
        assert np.array_equal(arrays["x"], np.arange(5))

    def test_reserved_array_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            write_container(tmp_path / "c.npz", "network", {}, {"__header__": np.zeros(1)})

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactCorruptError):
            read_container(tmp_path / "nope.npz")

    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz file at all")
        with pytest.raises(ArtifactCorruptError):
            read_container(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ArtifactSchemaError, match="missing header"):
            read_container(path)

    def test_header_not_json(self, tmp_path):
        path = tmp_path / "badjson.npz"
        np.savez(path, __header__=np.frombuffer(b"{not json", dtype=np.uint8))
        with pytest.raises(ArtifactCorruptError, match="JSON"):
            read_container(path)

    def test_unknown_version(self, tmp_path):
        path = tmp_path / "c.npz"
        write_container(path, "network", {}, {})
        bad = _mangle_header(path, tmp_path / "bad.npz", lambda h: {**h, "format_version": 99})
        with pytest.raises(ArtifactVersionError, match="unsupported format version 99"):
            read_container(bad)

    def test_legacy_header_without_ops_rejected(self, tmp_path):
        path = tmp_path / "odd.npz"
        header = {"format_version": 3}  # no magic, not a valid legacy file
        np.savez(path, __header__=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8))
        with pytest.raises(ArtifactVersionError):
            read_container(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "c.npz"
        write_container(path, "network", {}, {})
        bad = _mangle_header(path, tmp_path / "bad.npz", lambda h: {**h, "magic": "other-tool"})
        with pytest.raises(ArtifactCorruptError, match="bad artifact magic"):
            read_container(bad)

    def test_write_is_atomic_no_temp_residue(self, tmp_path):
        path = tmp_path / "c.npz"
        write_container(path, "network", {"a": 1}, {"x": np.arange(3)})
        write_container(path, "network", {"a": 2}, {"x": np.arange(4)})  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["c.npz"]  # no .tmp.* leftovers
        header, arrays = read_container(path)
        assert header["meta"] == {"a": 2} and len(arrays["x"]) == 4

    def test_kind_mismatch(self, tmp_path):
        path = tmp_path / "c.npz"
        write_container(path, "optimizer", {}, {})
        with pytest.raises(ArtifactSchemaError, match="kind"):
            read_container(path, expect_kind="deployed")

    def test_truncated_file(self, tmp_path, deployed):
        path = tmp_path / "full.npz"
        save_deployed(deployed, path)
        blob = path.read_bytes()
        cut = tmp_path / "cut.npz"
        cut.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ArtifactError):
            load_deployed(cut)

    def test_errors_are_value_errors(self):
        # The pre-container hw.export API raised ValueError; the typed
        # hierarchy must remain catchable the old way.
        for err in (ArtifactError, ArtifactCorruptError, ArtifactSchemaError, ArtifactVersionError):
            assert issubclass(err, ValueError)


class TestDeployed:
    def test_roundtrip_bit_identical(self, tmp_path, deployed, rng):
        path = tmp_path / "d.npz"
        save_deployed(deployed, path)
        loaded = load_deployed(path)
        assert engine_fingerprint(loaded) == engine_fingerprint(deployed)
        x = rng.normal(size=(4, 3, 8, 8))
        assert np.array_equal(execute_deployed(loaded, x), execute_deployed(deployed, x))

    def test_groups_preserved(self, tmp_path, deployed):
        deployed.ops[0].groups = 1  # explicit, then check the field survives
        path = tmp_path / "d.npz"
        save_deployed(deployed, path)
        loaded = load_deployed(path)
        for a, b in zip(deployed.ops, loaded.ops):
            assert a.groups == b.groups

    def test_fingerprint_mismatch_detected(self, tmp_path, deployed):
        path = tmp_path / "d.npz"
        save_deployed(deployed, path)

        def corrupt(header):
            return header  # header untouched; we flip a weight tensor below

        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["op0.weight_codes"] = arrays["op0.weight_codes"].copy()
        arrays["op0.weight_codes"].flat[0] ^= 1
        np.savez(tmp_path / "bad.npz", **arrays)
        with pytest.raises(ArtifactCorruptError, match="fingerprint mismatch"):
            load_deployed(tmp_path / "bad.npz")

    @pytest.mark.parametrize("missing", ["name", "input_frac", "bits", "ops"])
    def test_missing_required_field(self, tmp_path, deployed, missing):
        path = tmp_path / "d.npz"
        save_deployed(deployed, path)
        bad = _mangle_header(
            path,
            tmp_path / "bad.npz",
            lambda h: {**h, "meta": {k: v for k, v in h["meta"].items() if k != missing}},
        )
        with pytest.raises(ArtifactSchemaError, match=missing):
            load_deployed(bad)

    def test_mistyped_field(self, tmp_path, deployed):
        path = tmp_path / "d.npz"
        save_deployed(deployed, path)

        def mutate(h):
            h = json.loads(json.dumps(h))
            h["meta"]["ops"][0]["in_frac"] = "four"
            return h

        bad = _mangle_header(path, tmp_path / "bad.npz", mutate)
        with pytest.raises(ArtifactSchemaError, match="in_frac"):
            load_deployed(bad)

    def test_unknown_op_field_rejected(self, tmp_path, deployed):
        path = tmp_path / "d.npz"
        save_deployed(deployed, path)

        def mutate(h):
            h = json.loads(json.dumps(h))
            h["meta"]["ops"][0]["dilation"] = 2
            return h

        bad = _mangle_header(path, tmp_path / "bad.npz", mutate)
        with pytest.raises(ArtifactSchemaError, match="dilation"):
            load_deployed(bad)

    def test_out_of_range_codes_rejected(self, tmp_path, deployed):
        path = tmp_path / "d.npz"
        save_deployed(deployed, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["op0.weight_codes"] = arrays["op0.weight_codes"].astype(np.int64) + 16
        np.savez(tmp_path / "bad.npz", **arrays)
        with pytest.raises(ArtifactSchemaError, match="4 bits"):
            load_deployed(tmp_path / "bad.npz")

    def test_float_weight_codes_rejected(self, tmp_path, deployed):
        path = tmp_path / "d.npz"
        save_deployed(deployed, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["op0.weight_codes"] = arrays["op0.weight_codes"].astype(np.float32)
        np.savez(tmp_path / "bad.npz", **arrays)
        with pytest.raises(ArtifactSchemaError, match="integer"):
            load_deployed(tmp_path / "bad.npz")


class TestNetworkAndOptimizer:
    def test_network_roundtrip(self, tmp_path, tiny_net):
        path = tmp_path / "net.npz"
        save_network(tiny_net, path)
        state = load_network_state(path)
        for p in tiny_net.params:
            assert state[p.name].dtype == p.data.dtype
            assert np.array_equal(state[p.name], p.data)
        fresh = cifar10_small(size=8, width=4, rng=np.random.default_rng(99), dtype=np.float32)
        load_network_into(fresh, path)
        for a, b in zip(tiny_net.params, fresh.params):
            assert np.array_equal(a.data, b.data)

    def test_network_mismatch_rejected(self, tmp_path, tiny_net):
        path = tmp_path / "net.npz"
        save_network(tiny_net, path)
        other = cifar10_small(size=16, width=8, rng=np.random.default_rng(0))
        with pytest.raises(ArtifactSchemaError, match="does not match"):
            load_network_into(other, path)

    def test_network_dtype_validated(self, tmp_path, tiny_net):
        path = tmp_path / "net.npz"
        save_network(tiny_net, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        key = next(k for k in arrays if k.startswith("weights/"))
        arrays[key] = arrays[key].astype(np.float64)
        np.savez(tmp_path / "bad.npz", **arrays)
        with pytest.raises(ArtifactSchemaError, match="dtype"):
            load_network_state(tmp_path / "bad.npz")

    def test_optimizer_roundtrip(self, tmp_path, tiny_net, rng):
        opt = SGD(tiny_net.params, lr=0.05, momentum=0.8, weight_decay=1e-4)
        # Take a couple of real steps so velocity is non-trivial.
        x = rng.normal(size=(8, 3, 8, 8)).astype(np.float32)
        for _ in range(2):
            logits = tiny_net.forward(x, training=True)
            tiny_net.backward(np.ones_like(logits))
            opt.step()
        path = tmp_path / "opt.npz"
        save_optimizer(opt, path)
        state = load_optimizer_state(path)
        fresh = SGD(tiny_net.params, lr=0.1)
        fresh.load_state_dict(state)
        assert fresh.lr == opt.lr
        assert fresh.momentum == opt.momentum
        assert fresh.weight_decay == opt.weight_decay
        for (p, v), (_, v2) in zip(
            zip(opt.params, opt._velocity), zip(fresh.params, fresh._velocity)
        ):
            assert np.array_equal(v, v2)

    def test_optimizer_name_mismatch_rejected(self, tmp_path, tiny_net):
        opt = SGD(tiny_net.params, lr=0.05)
        path = tmp_path / "opt.npz"
        save_optimizer(opt, path)
        other_net = cifar10_small(size=8, width=4, name="other", rng=np.random.default_rng(1))
        other = SGD(other_net.params[:2], lr=0.05)
        with pytest.raises(ValueError, match="name mismatch"):
            other.load_state_dict(load_optimizer_state(path))


class TestPlanAndResult:
    def test_plan_roundtrip(self, rng, tiny_net):
        mfdfp = MFDFPNetwork.from_float(
            tiny_net, rng.normal(size=(16, 3, 8, 8)).astype(np.float32)
        )
        plan = mfdfp.plan
        rebuilt = plan_from_meta(plan_to_meta(plan))
        assert rebuilt.bits == plan.bits
        assert rebuilt.input_fmt == plan.input_fmt
        assert rebuilt.min_exp == plan.min_exp and rebuilt.max_exp == plan.max_exp
        assert rebuilt.dynamic == plan.dynamic
        assert rebuilt.layers == plan.layers

    def test_mfdfp_result_roundtrip(self, tmp_path, small_data):
        from repro.core import MFDFPConfig, run_algorithm1

        train, test = small_data
        net = cifar10_small(size=16, rng=np.random.default_rng(4))
        config = MFDFPConfig(phase1_epochs=1, phase2_epochs=1, batch_size=32)
        result = run_algorithm1(
            net, train, test, train.x[:64], config, rng=np.random.default_rng(5)
        )
        path = tmp_path / "result.npz"
        save_mfdfp_result(result, path)
        template = cifar10_small(size=16, rng=np.random.default_rng(99))
        loaded = load_mfdfp_result(path, template)
        assert loaded.plan.layers == result.plan.layers
        assert loaded.float_val_error == result.float_val_error
        assert loaded.phase1.train_losses == result.phase1.train_losses
        assert loaded.phase2.val_errors == result.phase2.val_errors
        for a, b in zip(result.mfdfp.net.params, loaded.mfdfp.net.params):
            assert np.array_equal(a.data, b.data)
        assert len(loaded.phase1_snapshots) == len(result.phase1_snapshots)
        for snap_a, snap_b in zip(result.phase1_snapshots, loaded.phase1_snapshots):
            assert set(snap_a) == set(snap_b)
            for k in snap_a:
                assert np.array_equal(snap_a[k], snap_b[k])
        # The reloaded student must predict bit-identically.
        x = test.x[:16]
        assert np.array_equal(result.mfdfp.logits(x), loaded.mfdfp.logits(x))
