"""Checkpointer behaviour and in-process exact-resume guarantees.

(The fresh-process kill-and-resume bit-identity gates live in
``test_resume_bit_identity.py``; these tests cover the mechanics —
intervals, restore strictness, RNG-site coverage — at in-process speed.)
"""

import numpy as np
import pytest

from repro.core import MFDFPConfig, MFDFPNetwork, run_algorithm1
from repro.core.pipeline import phase1_finetune
from repro.datasets import cifar10_surrogate
from repro.io import (
    Checkpointer,
    CheckpointStateError,
    PipelineCheckpointer,
    load_checkpoint,
    resume_algorithm1,
    save_checkpoint,
)
from repro.io.artifacts import ArtifactCorruptError, ArtifactError, ArtifactSchemaError
from repro.io.checkpoint import _prune_verified
from repro.nn import SGD, PlateauScheduler, Trainer
from repro.nn.layers import Dense, Dropout, Flatten, ReLU
from repro.nn.network import Network
from repro.zoo import cifar10_small


def _problem(seed_net=0, seed_rng=5, compiled=False, dropout=False):
    train, test = cifar10_surrogate(n_train=96, n_test=48, size=8, seed=2)
    if dropout:
        rng = np.random.default_rng(seed_net)
        net = Network(
            [
                Flatten(name="flat"),
                Dense(3 * 8 * 8, 32, rng=rng, name="fc1"),
                ReLU(name="relu1"),
                Dropout(0.3, rng=np.random.default_rng(77), name="drop"),
                Dense(32, 10, rng=rng, name="fc2"),
            ],
            input_shape=(3, 8, 8),
            name="dropnet",
        )
    else:
        net = cifar10_small(size=8, width=4, rng=np.random.default_rng(seed_net))
    optimizer = SGD(net.params, lr=0.02, momentum=0.9)
    trainer = Trainer(
        net,
        optimizer,
        scheduler=PlateauScheduler(optimizer, patience=1),
        batch_size=16,
        rng=np.random.default_rng(seed_rng),
        compiled=compiled,
    )
    return trainer, train, test


def _weights_equal(a, b):
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


class TestCheckpointer:
    def test_interval_and_latest(self, tmp_path):
        trainer, train, test = _problem()
        ck = Checkpointer(tmp_path, every=2)
        trainer.fit(train, test, epochs=5, checkpoint=ck)
        epochs = [int(p.stem.split("_")[1]) for p in ck.checkpoints()]
        assert epochs == [2, 4]
        assert ck.latest().name == "epoch_0004.npz"

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpointer(tmp_path, every=0)

    def test_resume_without_checkpoint_returns_zero(self, tmp_path):
        trainer, _, _ = _problem()
        assert Checkpointer(tmp_path / "empty").resume(trainer) == 0

    def test_checkpoint_phase_label(self, tmp_path):
        trainer, train, test = _problem()
        ck = Checkpointer(tmp_path, phase="surrogate")
        trainer.fit(train, test, epochs=1, checkpoint=ck)
        phase, _, _ = load_checkpoint(ck.latest())
        assert phase == "surrogate"

    @pytest.mark.parametrize("dropout", [False, True])
    @pytest.mark.parametrize("compiled", [False, True])
    def test_resume_matches_uninterrupted(self, tmp_path, compiled, dropout):
        ref, train, test = _problem(compiled=compiled, dropout=dropout)
        ref.fit(train, test, epochs=5)

        part, train, test = _problem(compiled=compiled, dropout=dropout)
        ck = Checkpointer(tmp_path)
        part.fit(train, test, epochs=3, checkpoint=ck)

        fresh, train, test = _problem(compiled=compiled, dropout=dropout)
        assert Checkpointer(tmp_path).resume(fresh) == 3
        fresh.fit(train, test, epochs=5, resume=True)
        assert _weights_equal(ref.net.get_weights(), fresh.net.get_weights())
        assert ref.history.train_losses == fresh.history.train_losses
        assert ref.history.val_errors == fresh.history.val_errors

    def test_non_pcg64_generators_checkpoint_exactly(self, tmp_path):
        """MT19937/Philox states carry ndarrays; they must round-trip
        through the JSON header and resume bit-identically."""

        def mt_problem():
            trainer, train, test = _problem()
            trainer.rng = np.random.Generator(np.random.MT19937(7))
            return trainer, train, test

        ref, train, test = mt_problem()
        ref.fit(train, test, epochs=4)

        part, train, test = mt_problem()
        ck = Checkpointer(tmp_path)
        part.fit(train, test, epochs=2, checkpoint=ck)
        fresh, train, test = mt_problem()
        assert Checkpointer(tmp_path).resume(fresh) == 2
        fresh.fit(train, test, epochs=4, resume=True)
        assert _weights_equal(ref.net.get_weights(), fresh.net.get_weights())
        assert ref.history.train_losses == fresh.history.train_losses

    def test_resume_restores_scheduler_finish(self, tmp_path):
        trainer, train, test = _problem()
        trainer.scheduler.finished = True  # simulate a run that plateaued out
        ck = Checkpointer(tmp_path)
        ck.save(trainer)
        fresh, train, test = _problem()
        ck.resume(fresh)
        assert fresh.scheduler.finished
        fresh.fit(train, test, epochs=5, resume=True)
        assert fresh.history.epochs == []  # finished schedulers train no further

    def test_restore_into_wrong_architecture_rejected(self, tmp_path):
        trainer, train, test = _problem()
        ck = Checkpointer(tmp_path)
        trainer.fit(train, test, epochs=1, checkpoint=ck)
        other, _, _ = _problem(dropout=True)
        with pytest.raises((KeyError, ValueError)):
            ck.resume(other)

    def test_rng_site_mismatch_rejected(self, tmp_path):
        trainer, train, test = _problem(dropout=True)
        ck = Checkpointer(tmp_path)
        trainer.fit(train, test, epochs=1, checkpoint=ck)
        _, state, _ = load_checkpoint(ck.latest())
        del state["rng"]["layer:drop"]
        fresh, _, _ = _problem(dropout=True)
        with pytest.raises(ValueError, match="RNG site"):
            fresh.load_state_dict(state)


def _tear(path, keep=0.5):
    """Simulate a torn write: the file exists but its tail is gone."""
    blob = path.read_bytes()
    path.write_bytes(blob[: int(len(blob) * keep)])


class TestTornCheckpoints:
    def test_bad_keep_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            Checkpointer(tmp_path, keep=0)

    def test_keep_prunes_oldest_verified(self, tmp_path):
        trainer, train, test = _problem()
        ck = Checkpointer(tmp_path, keep=2)
        trainer.fit(train, test, epochs=4, checkpoint=ck)
        assert [p.name for p in ck.checkpoints()] == ["epoch_0003.npz", "epoch_0004.npz"]

    def test_prune_never_deletes_newest_valid_when_newest_is_torn(self, tmp_path):
        """Regression: ``keep=1`` with a torn latest file must keep the
        newest file that actually loads — counting the torn file toward
        the window would evict resume's only fallback."""
        trainer, train, test = _problem()
        ck = Checkpointer(tmp_path, keep=1)
        trainer.fit(train, test, epochs=1, checkpoint=ck)
        valid = ck.path_for(1)
        torn = ck.path_for(2)
        torn.write_bytes(b"PK\x03\x04 torn to pieces")
        _prune_verified(ck.checkpoints(), 1)
        assert valid.is_file(), "pruning evicted the only loadable checkpoint"
        assert torn.is_file(), "torn files are evidence; pruning must not reap them"
        fresh, train, test = _problem()
        assert Checkpointer(tmp_path).resume(fresh) == 1

    def test_resume_skips_torn_newest_and_stays_bit_identical(self, tmp_path):
        ref, train, test = _problem()
        ref.fit(train, test, epochs=5)

        part, train, test = _problem()
        ck = Checkpointer(tmp_path)
        part.fit(train, test, epochs=3, checkpoint=ck)
        _tear(ck.path_for(3))

        fresh, train, test = _problem()
        resumed_ck = Checkpointer(tmp_path, keep=1)
        assert resumed_ck.resume(fresh) == 2  # fell back past the torn file
        fresh.fit(train, test, epochs=5, resume=True, checkpoint=resumed_ck)
        assert _weights_equal(ref.net.get_weights(), fresh.net.get_weights())
        assert ref.history.train_losses == fresh.history.train_losses
        # Re-running epoch 3 healed the torn file; pruning then applied.
        assert resumed_ck.latest().name == "epoch_0005.npz"

    def test_resume_with_every_file_torn_is_typed(self, tmp_path):
        trainer, train, test = _problem()
        ck = Checkpointer(tmp_path)
        trainer.fit(train, test, epochs=2, checkpoint=ck)
        for path in ck.checkpoints():
            _tear(path, keep=0.3)
        fresh, _, _ = _problem()
        with pytest.raises(ArtifactCorruptError, match="all 2 checkpoint file"):
            Checkpointer(tmp_path).resume(fresh)

    def test_pipeline_torn_newest_step_falls_back(self, tmp_path):
        train, test = cifar10_surrogate(n_train=96, n_test=48, size=8, seed=2)
        net = cifar10_small(size=8, width=4, rng=np.random.default_rng(0))
        config = MFDFPConfig(phase1_epochs=1, phase2_epochs=1, batch_size=16)
        ck = PipelineCheckpointer(tmp_path)
        run_algorithm1(net, train, test, train.x[:48], config,
                       rng=np.random.default_rng(3), checkpoint=ck)
        steps = ck.checkpoints()
        assert [p.name for p in steps] == ["step_0001.npz", "step_0002.npz"]
        _tear(steps[-1])
        data = ck.load_latest()
        assert data["phase"] == "phase1"  # the newest *loadable* boundary
        _tear(steps[0], keep=0.3)
        with pytest.raises(ArtifactCorruptError, match="unreadable"):
            ck.load_latest()

    def test_pipeline_prune_spares_newest_valid_behind_torn_file(self, tmp_path):
        """The verified-only window applies to step files too: a torn
        newest step must not push the newest valid one out of ``keep``."""
        valid = [tmp_path / f"step_{i:04d}.npz" for i in (1, 2)]
        trainer, _, _ = _problem()
        for path in valid:
            save_checkpoint(path, trainer.state_dict(), phase="phase1")
        torn = tmp_path / "step_0003.npz"
        torn.write_bytes(b"half a zip")
        ck = PipelineCheckpointer(tmp_path, keep=1)
        deleted = _prune_verified(ck.checkpoints(), ck.keep)
        assert deleted == [valid[0]]
        assert valid[1].is_file() and torn.is_file()


class TestStochasticResume:
    def test_stochastic_weight_hooks_resume_exactly(self, tmp_path):
        """Stochastic rounding consumes RNG per forward; resume must too."""
        train, test = cifar10_surrogate(n_train=96, n_test=48, size=8, seed=2)
        config = MFDFPConfig(
            phase1_epochs=3, phase2_epochs=0, batch_size=16, weight_mode="stochastic",
            snapshot_phase1=False, compiled=True,
        )

        def make_mfdfp(rng):
            net = cifar10_small(size=8, width=4, rng=np.random.default_rng(1))
            return MFDFPNetwork.from_float(
                net, train.x[:48], weight_mode="stochastic", rng=rng
            )

        rng_a = np.random.default_rng(11)
        mf_a = make_mfdfp(rng_a)
        ref = phase1_finetune(mf_a, train, test, config, rng=rng_a)

        rng_b = np.random.default_rng(11)
        mf_b = make_mfdfp(rng_b)
        opt = SGD(mf_b.params, lr=config.lr, momentum=config.momentum)
        trainer = Trainer(
            mf_b.net,
            opt,
            scheduler=PlateauScheduler(opt, patience=config.plateau_patience,
                                       factor=config.lr_factor, min_lr=config.min_lr),
            batch_size=config.batch_size,
            rng=rng_b,
            compiled=config.compiled,
        )
        ck = Checkpointer(tmp_path)
        trainer.fit(train, test, epochs=2, checkpoint=ck)

        rng_c = np.random.default_rng(999)  # seed irrelevant: state is restored
        mf_c = make_mfdfp(rng_c)
        resumed = phase1_finetune(
            mf_c, train, test, config, rng=rng_c,
            resume_state=load_checkpoint(ck.latest())[1],
        )
        assert ref.train_losses == resumed.train_losses
        assert ref.val_errors == resumed.val_errors
        for a, b in zip(mf_a.params, mf_c.params):
            assert np.array_equal(a.data, b.data)


class TestPipelineCheckpointer:
    def test_resume_config_comes_from_checkpoint(self, tmp_path):
        train, test = cifar10_surrogate(n_train=96, n_test=48, size=8, seed=2)
        net = cifar10_small(size=8, width=4, rng=np.random.default_rng(0))
        config = MFDFPConfig(phase1_epochs=1, phase2_epochs=1, batch_size=16)
        ck = PipelineCheckpointer(tmp_path)
        run_algorithm1(net, train, test, train.x[:48], config, rng=np.random.default_rng(3),
                       checkpoint=ck)
        data = ck.load_latest()
        assert data["phase"] == "phase2"
        assert data["config"]["phase1_epochs"] == 1

        template = cifar10_small(size=8, width=4, rng=np.random.default_rng(0))
        with pytest.raises(ArtifactSchemaError, match="config differs"):
            resume_algorithm1(
                template, train, test, tmp_path,
                config=MFDFPConfig(phase1_epochs=7, phase2_epochs=1, batch_size=16),
            )

    def test_resume_from_empty_directory_rejected(self, tmp_path):
        template = cifar10_small(size=8, width=4)
        train, test = cifar10_surrogate(n_train=32, n_test=16, size=8, seed=2)
        with pytest.raises(ArtifactError, match="no pipeline checkpoint"):
            resume_algorithm1(template, train, test, tmp_path / "missing")

    def test_old_step_files_are_pruned(self, tmp_path):
        """Self-contained per-step files would grow quadratically; only
        the newest ``keep`` boundaries survive (resume reads one)."""
        train, test = cifar10_surrogate(n_train=96, n_test=48, size=8, seed=2)
        net = cifar10_small(size=8, width=4, rng=np.random.default_rng(0))
        config = MFDFPConfig(phase1_epochs=3, phase2_epochs=3, batch_size=16)
        ck = PipelineCheckpointer(tmp_path, keep=2)
        run_algorithm1(net, train, test, train.x[:48], config,
                       rng=np.random.default_rng(3), checkpoint=ck)
        names = [p.name for p in ck.checkpoints()]
        assert len(names) == 2
        assert names[-1] == "step_0006.npz"  # the newest boundary survives

    def test_temp_files_are_invisible_to_resume(self, tmp_path):
        """A kill mid-write leaves only a dot-temp file; globs skip it."""
        trainer, train, test = _problem()
        ck = Checkpointer(tmp_path)
        trainer.fit(train, test, epochs=2, checkpoint=ck)
        (tmp_path / ".tmp.999.epoch_0009.npz").write_bytes(b"truncated junk")
        assert ck.latest().name == "epoch_0002.npz"
        fresh, train, test = _problem()
        assert Checkpointer(tmp_path).resume(fresh) == 2

    def test_save_requires_begin(self, tmp_path):
        trainer, _, _ = _problem()
        ck = PipelineCheckpointer(tmp_path)
        with pytest.raises(ValueError, match="begin"):
            ck._save("phase1", trainer, seq=1)

    def test_save_before_begin_is_typed_lifecycle_error(self, tmp_path):
        """Regression: out-of-order checkpointer use raises from the io
        taxonomy (CheckpointStateError < ArtifactError < ValueError), so
        resume drivers catching ArtifactError see it too."""
        trainer, _, _ = _problem()
        ck = PipelineCheckpointer(tmp_path)
        with pytest.raises(CheckpointStateError):
            ck._save("phase1", trainer, seq=1)
        with pytest.raises(ArtifactError):
            ck._save("phase2", trainer, seq=1)
