"""ExplorationCheckpointer: round trip, schema refusal, retention, torn files."""

import numpy as np
import pytest

from repro.explore import DesignSpace, ExploreConfig
from repro.explore.explorer import EvaluatedPoint
from repro.io import ArtifactSchemaError, ExplorationCheckpointer, write_container

SPACE = DesignSpace(bits=(4, 8), min_exps=(-7,), num_pus=(1, 2), technologies=("65nm",))
CONFIG = ExploreConfig(seed=3, rung_epochs=(0, 1), final_epochs=2)


def make_rows(space=SPACE, rungs=(0,)):
    rows = []
    for rung in rungs:
        for point in space.points():
            rows.append(
                EvaluatedPoint(
                    point=point,
                    rung=rung,
                    accuracy=0.5 + 0.01 * point.index + 0.1 * rung,
                    area_mm2=1.0 + point.index,
                    power_mw=10.0 * (point.index + 1),
                    latency_us=2.0,
                    energy_uj=0.02 * (point.index + 1),
                    full=rung == CONFIG.final_rung,
                )
            )
    return rows


class TestRoundTrip:
    def test_save_load_bit_identical(self, tmp_path):
        ckpt = ExplorationCheckpointer(tmp_path / "ckpt")
        rows = make_rows(rungs=(0, 2))
        path = ckpt.save(rows, SPACE, CONFIG)
        assert path.is_file()
        restored = ckpt.load(SPACE, CONFIG)
        assert set(restored) == {(r.rung, r.point.index) for r in rows}
        for row in rows:
            assert restored[(row.rung, row.point.index)] == row

    def test_empty_directory_loads_nothing(self, tmp_path):
        ckpt = ExplorationCheckpointer(tmp_path / "never-created")
        assert ckpt.latest() is None
        assert ckpt.load(SPACE, CONFIG) == {}

    def test_save_rejects_foreign_rows(self, tmp_path):
        ckpt = ExplorationCheckpointer(tmp_path / "ckpt")
        with pytest.raises(TypeError, match="EvaluatedPoint"):
            ckpt.save([{"accuracy": 0.9}], SPACE, CONFIG)

    def test_keep_validated(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            ExplorationCheckpointer(tmp_path, keep=0)


class TestSchemaRefusal:
    def test_different_space_rejected(self, tmp_path):
        ckpt = ExplorationCheckpointer(tmp_path / "ckpt")
        ckpt.save(make_rows(), SPACE, CONFIG)
        other = DesignSpace(bits=(8,), min_exps=(-7,), num_pus=(1, 2), technologies=("65nm",))
        with pytest.raises(ArtifactSchemaError, match="design space"):
            ckpt.load(other, CONFIG)

    def test_different_config_rejected(self, tmp_path):
        ckpt = ExplorationCheckpointer(tmp_path / "ckpt")
        ckpt.save(make_rows(), SPACE, CONFIG)
        with pytest.raises(ArtifactSchemaError, match="config"):
            ckpt.load(SPACE, ExploreConfig(seed=4, rung_epochs=(0, 1), final_epochs=2))

    def test_checkpoint_every_does_not_invalidate(self, tmp_path):
        """Resume cadence is not part of exploration identity."""
        ckpt = ExplorationCheckpointer(tmp_path / "ckpt")
        rows = make_rows()
        ckpt.save(rows, SPACE, CONFIG)
        coarser = ExploreConfig(seed=3, rung_epochs=(0, 1), final_epochs=2, checkpoint_every=64)
        assert len(ckpt.load(SPACE, coarser)) == len(rows)

    def _write_raw(self, directory, arrays, count=4):
        directory.mkdir(parents=True, exist_ok=True)
        write_container(
            directory / f"exploration_{count}.npz",
            kind="exploration",
            meta={"space": SPACE.spec(), "config": CONFIG.spec(), "count": count},
            arrays=arrays,
        )

    def _full_arrays(self, n=4, **overrides):
        arrays = {
            "point_index": np.arange(n, dtype=np.int64),
            "rung": np.zeros(n, dtype=np.int64),
            "full": np.zeros(n, dtype=np.uint8),
            "accuracy": np.full(n, 0.5),
            "area_mm2": np.full(n, 1.0),
            "power_mw": np.full(n, 10.0),
            "latency_us": np.full(n, 2.0),
            "energy_uj": np.full(n, 0.02),
        }
        arrays.update(overrides)
        return arrays

    def test_missing_arrays_rejected(self, tmp_path):
        arrays = self._full_arrays()
        del arrays["energy_uj"]
        self._write_raw(tmp_path / "ckpt", arrays)
        with pytest.raises(ArtifactSchemaError, match="missing arrays"):
            ExplorationCheckpointer(tmp_path / "ckpt").load(SPACE, CONFIG)

    def test_ragged_arrays_rejected(self, tmp_path):
        arrays = self._full_arrays(accuracy=np.full(2, 0.5))
        self._write_raw(tmp_path / "ckpt", arrays)
        with pytest.raises(ArtifactSchemaError, match="ragged"):
            ExplorationCheckpointer(tmp_path / "ckpt").load(SPACE, CONFIG)

    def test_out_of_space_index_rejected(self, tmp_path):
        arrays = self._full_arrays(point_index=np.array([0, 1, 2, 99], dtype=np.int64))
        self._write_raw(tmp_path / "ckpt", arrays)
        with pytest.raises(ArtifactSchemaError, match="outside"):
            ExplorationCheckpointer(tmp_path / "ckpt").load(SPACE, CONFIG)

    def test_out_of_ladder_rung_rejected(self, tmp_path):
        arrays = self._full_arrays(rung=np.array([0, 0, 0, 7], dtype=np.int64))
        self._write_raw(tmp_path / "ckpt", arrays)
        with pytest.raises(ArtifactSchemaError, match="rung"):
            ExplorationCheckpointer(tmp_path / "ckpt").load(SPACE, CONFIG)


class TestRetentionAndTornFiles:
    def test_rolling_retention_keeps_newest(self, tmp_path):
        ckpt = ExplorationCheckpointer(tmp_path / "ckpt", keep=2)
        space = SPACE
        rows = make_rows(space)
        for count in (1, 2, 3):
            ckpt.save(rows[:count], space, CONFIG)
        names = sorted(p.name for p in (tmp_path / "ckpt").glob("exploration_*.npz"))
        assert names == ["exploration_2.npz", "exploration_3.npz"]

    def test_latest_skips_torn_newest(self, tmp_path):
        ckpt = ExplorationCheckpointer(tmp_path / "ckpt")
        good = ckpt.save(make_rows(), SPACE, CONFIG)
        torn = tmp_path / "ckpt" / "exploration_99.npz"
        torn.write_bytes(good.read_bytes()[: good.stat().st_size // 2])
        assert ckpt.latest() == good
        assert len(ckpt.load(SPACE, CONFIG)) == len(make_rows())
