"""Format-stability guards: committed golden artifacts must keep loading.

``tests/data/golden/`` holds a tiny deployed network written in both the
current container format and the legacy version-1 layout (generated
once by ``make_golden.py``; regenerate only alongside a deliberate
format change).  These tests pin:

* today's loader reproduces the committed artifacts bit-identically,
  down to the engine fingerprint and executed output codes;
* the legacy v1 file and the v2 file decode to the same network;
* every format version up to :data:`~repro.io.artifacts.FORMAT_VERSION`
  has a registered loader branch — a version bump without a loader is a
  tier-1 failure, not a latent load error in the field.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import engine_fingerprint, execute_deployed
from repro.io import FORMAT_VERSION, load_deployed, read_header
from repro.io.artifacts import DEPLOYED_LOADERS

GOLDEN = Path(__file__).resolve().parents[1] / "data" / "golden"


@pytest.fixture(scope="module")
def golden_meta():
    return json.loads((GOLDEN / "golden.json").read_text())


@pytest.fixture(scope="module")
def expected():
    with np.load(GOLDEN / "expected.npz") as data:
        return {k: data[k] for k in data.files}


def test_golden_files_are_committed():
    for name in ("deployed_v2.npz", "deployed_v1_legacy.npz", "expected.npz", "golden.json"):
        assert (GOLDEN / name).is_file(), f"golden file {name} is missing"


@pytest.mark.parametrize("filename", ["deployed_v2.npz", "deployed_v1_legacy.npz"])
def test_golden_loads_bit_identically(filename, golden_meta, expected):
    deployed = load_deployed(GOLDEN / filename)
    assert engine_fingerprint(deployed) == golden_meta["fingerprint"]
    out = execute_deployed(deployed, expected["x"])
    assert np.array_equal(out, expected["out_codes"])


def test_legacy_and_current_format_agree():
    v1 = load_deployed(GOLDEN / "deployed_v1_legacy.npz")
    v2 = load_deployed(GOLDEN / "deployed_v2.npz")
    assert engine_fingerprint(v1) == engine_fingerprint(v2)
    assert [op.kind for op in v1.ops] == [op.kind for op in v2.ops]
    for a, b in zip(v1.ops, v2.ops):
        assert a.groups == b.groups  # v1 predates groups; the loader defaults it


def test_golden_header_versions():
    assert read_header(GOLDEN / "deployed_v1_legacy.npz")["format_version"] == 1
    assert read_header(GOLDEN / "deployed_v2.npz")["format_version"] == FORMAT_VERSION


def test_every_version_has_a_loader_branch():
    """Bumping FORMAT_VERSION without a loader branch must fail tier-1."""
    assert FORMAT_VERSION == 2, (
        "FORMAT_VERSION changed: add a loader branch to DEPLOYED_LOADERS, "
        "regenerate nothing (old goldens must keep loading), extend this "
        "test's pin, and commit a new golden for the new version"
    )
    assert set(DEPLOYED_LOADERS) == set(range(1, FORMAT_VERSION + 1))
    assert all(callable(fn) for fn in DEPLOYED_LOADERS.values())
