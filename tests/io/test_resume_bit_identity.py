"""Kill-and-resume bit-identity, across real process boundaries.

The acceptance gate of the checkpoint subsystem: a training run killed
at an epoch boundary and resumed in a *fresh process namespace* (new
interpreter, new module state, new caches) must produce bit-identical
final weights and loss curves to the uninterrupted run — for the eager
trainer, the compiled trainer, and the full MF-DFP pipeline (killed in
phase 1 and in phase 2, with phase-1 snapshots and phase-2 distillation
compared exactly).

Each scenario writes a driver script to a temp directory and runs it
twice under ``sys.executable``: once to train k epochs and checkpoint,
once to resume to completion and dump the final state; the reference
(uninterrupted) run happens in-process — everything is deterministic,
so any drift between the three namespaces is a real bug.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Shared problem construction, inlined into every driver namespace.
PROBLEM_SRC = textwrap.dedent(
    """
    import numpy as np
    from repro.datasets import cifar10_surrogate
    from repro.nn import SGD, PlateauScheduler, Trainer
    from repro.zoo import cifar10_small

    def make_trainer(compiled):
        train, test = cifar10_surrogate(n_train=96, n_test=48, size=8, seed=2)
        net = cifar10_small(size=8, width=4, rng=np.random.default_rng(0))
        optimizer = SGD(net.params, lr=0.02, momentum=0.9)
        trainer = Trainer(
            net, optimizer,
            scheduler=PlateauScheduler(optimizer, patience=1),
            batch_size=16, rng=np.random.default_rng(5), compiled=compiled,
        )
        return trainer, train, test

    def make_pipeline_problem():
        train, test = cifar10_surrogate(n_train=96, n_test=48, size=8, seed=2)
        net = cifar10_small(size=8, width=4, rng=np.random.default_rng(0))
        return net, train, test
    """
)


def run_driver(tmp_path: Path, name: str, body: str) -> None:
    script = tmp_path / f"{name}.py"
    script.write_text(PROBLEM_SRC + textwrap.dedent(body))
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"driver {name} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )


def load_result(path: Path) -> dict:
    with np.load(path) as data:
        return {k: data[k] for k in data.files}


def assert_results_equal(ref: dict, resumed: dict) -> None:
    assert set(ref) == set(resumed)
    for key in sorted(ref):
        assert np.array_equal(ref[key], resumed[key]), f"{key} differs after resume"


class TestTrainerResume:
    @pytest.mark.parametrize("compiled", [False, True], ids=["eager", "compiled"])
    def test_killed_run_resumes_bit_identically(self, tmp_path, compiled):
        # Reference: 6 uninterrupted epochs, this process.
        sys.path.insert(0, str(tmp_path))
        try:
            namespace: dict = {}
            exec(PROBLEM_SRC, namespace)  # noqa: S102 - our own driver source
            trainer, train, test = namespace["make_trainer"](compiled)
            trainer.fit(train, test, epochs=6)
            ref = {
                **{f"w/{k}": v for k, v in trainer.net.get_weights().items()},
                "losses": np.array(trainer.history.train_losses),
                "errors": np.array(trainer.history.val_errors),
            }
        finally:
            sys.path.remove(str(tmp_path))

        run_driver(
            tmp_path,
            "part1",
            f"""
            from repro.io import Checkpointer
            trainer, train, test = make_trainer({compiled!r})
            trainer.fit(train, test, epochs=3, checkpoint=Checkpointer("ckpt"))
            """,
        )
        assert (tmp_path / "ckpt" / "epoch_0003.npz").is_file()
        run_driver(
            tmp_path,
            "part2",
            f"""
            from repro.io import Checkpointer
            trainer, train, test = make_trainer({compiled!r})
            ck = Checkpointer("ckpt")
            assert ck.resume(trainer) == 3
            trainer.fit(train, test, epochs=6, resume=True, checkpoint=ck)
            out = {{f"w/{{k}}": v for k, v in trainer.net.get_weights().items()}}
            out["losses"] = np.array(trainer.history.train_losses)
            out["errors"] = np.array(trainer.history.val_errors)
            np.savez("resumed.npz", **out)
            """,
        )
        assert_results_equal(ref, load_result(tmp_path / "resumed.npz"))


PIPELINE_REF_SRC = textwrap.dedent(
    """
    from repro.core import MFDFPConfig, run_algorithm1
    config = MFDFPConfig(phase1_epochs=3, phase2_epochs=3, lr=5e-3, batch_size=16)
    net, train, test = make_pipeline_problem()
    result = run_algorithm1(net, train, test, train.x[:48], config,
                            rng=np.random.default_rng(9))
    """
)

PIPELINE_DUMP_SRC = textwrap.dedent(
    """
    out = {f"w/{k}": v for k, v in result.mfdfp.net.get_weights().items()}
    out["p1_losses"] = np.array(result.phase1.train_losses)
    out["p1_errors"] = np.array(result.phase1.val_errors)
    out["p2_losses"] = np.array(result.phase2.train_losses)
    out["p2_errors"] = np.array(result.phase2.val_errors)
    out["float_val_error"] = np.array(result.float_val_error)
    for e, snap in enumerate(result.phase1_snapshots):
        for k, v in snap.items():
            out[f"snap{e}/{k}"] = v
    np.savez(OUT, **out)
    """
)


class TestPipelineResume:
    @pytest.mark.parametrize("kill_after", [2, 4], ids=["killed-in-phase1", "killed-in-phase2"])
    def test_killed_pipeline_resumes_bit_identically(self, tmp_path, kill_after):
        # Reference: the uninterrupted pipeline, in a fresh process too
        # (cleanest comparison: all three runs cross process boundaries).
        run_driver(
            tmp_path,
            "reference",
            PIPELINE_REF_SRC + "OUT = 'reference.npz'\n" + PIPELINE_DUMP_SRC,
        )
        run_driver(
            tmp_path,
            "killed",
            f"""
            from repro.core import MFDFPConfig, run_algorithm1
            from repro.io import PipelineCheckpointer

            class Killed(Exception):
                pass

            config = MFDFPConfig(phase1_epochs=3, phase2_epochs=3, lr=5e-3, batch_size=16)
            net, train, test = make_pipeline_problem()
            ck = PipelineCheckpointer("ckpt")
            inner = ck._save
            def killing(phase, trainer, seq):
                path = inner(phase, trainer, seq)
                if seq >= {kill_after}:
                    raise Killed()  # simulates the process dying at the boundary
                return path
            ck._save = killing
            try:
                run_algorithm1(net, train, test, train.x[:48], config,
                               rng=np.random.default_rng(9), checkpoint=ck)
            except Killed:
                pass
            else:
                raise SystemExit("kill never happened")
            """,
        )
        run_driver(
            tmp_path,
            "resumed",
            textwrap.dedent(
                """
                from repro.io import resume_algorithm1
                net, train, test = make_pipeline_problem()
                result = resume_algorithm1(net, train, test, "ckpt")
                OUT = 'resumed.npz'
                """
            )
            + PIPELINE_DUMP_SRC,
        )
        assert_results_equal(
            load_result(tmp_path / "reference.npz"), load_result(tmp_path / "resumed.npz")
        )
