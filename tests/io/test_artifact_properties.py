"""Property tests: save/load is bit-identity over random artifact spaces.

Seeded random draws (the repo's property-test idiom, cf.
``tests/core/test_engine_properties.py``) of deployed-network layer
stacks — geometry, strides, padding, groups, fraction lengths, 4-bit
codes — and of float networks with mixed dtypes.  Every draw must
round-trip bit-identically: tensors, engine fingerprints, optimizer
state.  The flip side is the corruption property: a file with flipped
or missing bytes either still loads to the *identical* artifact (the
damage hit slack bytes) or raises the typed
:class:`~repro.io.artifacts.ArtifactError` — never a raw
numpy/JSON/zipfile exception.
"""

import numpy as np
import pytest

from repro.core.engine import engine_fingerprint, execute_deployed
from repro.io import (
    ArtifactError,
    load_deployed,
    load_network_state,
    load_optimizer_state,
    save_deployed,
    save_network,
    save_optimizer,
)
from repro.nn import SGD
from repro.nn.layers import AvgPool2D, Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.network import Network

try:  # mirrors repro.core.mfdfp imports without depending on test order
    from repro.core.mfdfp import DeployedLayer, DeployedMFDFP
except ImportError:  # pragma: no cover
    raise

SEEDS = range(8)


def _conv_out(size: int, k: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - k) // stride + 1


def _pool_out(size: int, k: int, stride: int) -> int:
    # ceil mode, as DeployedLayer defaults to
    return -(-(size - k) // stride) + 1


def random_deployed(rng: np.random.Generator) -> DeployedMFDFP:
    """A random conv/pool stack ending in flatten + dense."""
    c = int(rng.integers(1, 4))
    h = w = int(rng.integers(6, 12))
    deployed = DeployedMFDFP(
        name=f"prop_{rng.integers(1 << 16)}",
        input_shape=(c, h, w),
        input_frac=int(rng.integers(0, 8)),
        bits=8,
    )
    frac = deployed.input_frac
    for i in range(int(rng.integers(1, 3))):
        out_frac = int(rng.integers(0, 8))
        groups = int(rng.choice([1, 2])) if c % 2 == 0 else 1
        cout = groups * int(rng.integers(1, 3))
        k = int(rng.integers(1, min(4, h + 1)))
        stride = int(rng.integers(1, 3))
        pad = int(rng.integers(0, 2))
        deployed.ops.append(
            DeployedLayer(
                kind="conv",
                name=f"conv{i}",
                in_frac=frac,
                out_frac=out_frac,
                weight_codes=rng.integers(0, 16, size=(cout, c // groups, k, k)),
                bias_int=rng.integers(-3000, 3000, size=cout) if rng.integers(2) else None,
                activation=str(rng.choice(["none", "relu"])),
                in_channels=c,
                out_channels=cout,
                kernel_size=k,
                stride=stride,
                pad=pad,
                groups=groups,
            )
        )
        c, h = cout, _conv_out(h, k, stride, pad)
        w, frac = _conv_out(w, k, stride, pad), out_frac
        if h >= 3 and rng.integers(2):
            pk, ps = 2, 2
            out_frac = int(rng.integers(0, 8))
            deployed.ops.append(
                DeployedLayer(
                    kind=str(rng.choice(["maxpool", "avgpool"])),
                    name=f"pool{i}",
                    in_frac=frac,
                    out_frac=out_frac,
                    kernel_size=pk,
                    stride=ps,
                )
            )
            h, w, frac = _pool_out(h, pk, ps), _pool_out(w, pk, ps), out_frac
    features = c * h * w
    deployed.ops.append(
        DeployedLayer(kind="flatten", name="flat", in_frac=frac, out_frac=frac)
    )
    out_features = int(rng.integers(2, 6))
    deployed.ops.append(
        DeployedLayer(
            kind="dense",
            name="head",
            in_frac=frac,
            out_frac=int(rng.integers(0, 8)),
            weight_codes=rng.integers(0, 16, size=(out_features, features)),
            bias_int=rng.integers(-3000, 3000, size=out_features),
            in_features=features,
            out_features=out_features,
        )
    )
    return deployed


def random_float_net(rng: np.random.Generator) -> Network:
    """A random small conv/dense network with a random float dtype."""
    dtype = rng.choice([np.float32, np.float64])
    c = int(rng.integers(1, 4))
    size = 8
    width = int(rng.integers(2, 6))
    layers = [
        Conv2D(c, width, 3, pad=1, dtype=dtype, rng=rng, name="conv1"),
        ReLU(name="relu1"),
        MaxPool2D(2, stride=2, name="pool1") if rng.integers(2) else AvgPool2D(2, stride=2, name="pool1"),
        Flatten(name="flat"),
        Dense(width * (size // 2) ** 2, int(rng.integers(2, 8)), dtype=dtype, rng=rng, name="ip1"),
    ]
    return Network(layers, input_shape=(c, size, size), name="prop_net")


@pytest.mark.parametrize("seed", SEEDS)
def test_deployed_roundtrip_random_stacks(seed, tmp_path):
    rng = np.random.default_rng(1000 + seed)
    deployed = random_deployed(rng)
    path = tmp_path / "d.npz"
    save_deployed(deployed, path)
    loaded = load_deployed(path)
    assert engine_fingerprint(loaded) == engine_fingerprint(deployed)
    assert len(loaded.ops) == len(deployed.ops)
    for a, b in zip(deployed.ops, loaded.ops):
        if a.weight_codes is None:
            assert b.weight_codes is None
        else:
            assert np.array_equal(a.weight_codes, b.weight_codes)
        if a.bias_int is None:
            assert b.bias_int is None
        else:
            assert np.array_equal(a.bias_int, b.bias_int)
    x = rng.normal(scale=0.5, size=(3,) + tuple(deployed.input_shape))
    assert np.array_equal(execute_deployed(loaded, x), execute_deployed(deployed, x))


@pytest.mark.parametrize("seed", SEEDS)
def test_network_and_optimizer_roundtrip_random(seed, tmp_path):
    rng = np.random.default_rng(2000 + seed)
    net = random_float_net(rng)
    opt = SGD(net.params, lr=float(rng.uniform(1e-4, 0.1)), momentum=float(rng.uniform(0, 0.99)))
    x = rng.normal(size=(4,) + net.input_shape).astype(net.params[0].data.dtype)
    logits = net.forward(x, training=True)
    net.backward(np.ones_like(logits))
    opt.step()

    save_network(net, tmp_path / "n.npz")
    state = load_network_state(tmp_path / "n.npz")
    for p in net.params:
        assert state[p.name].dtype == p.data.dtype  # dtype-exact, not just value-equal
        assert np.array_equal(state[p.name], p.data)

    save_optimizer(opt, tmp_path / "o.npz")
    fresh = SGD(net.params, lr=1.0)
    fresh.load_state_dict(load_optimizer_state(tmp_path / "o.npz"))
    assert fresh.lr == opt.lr and fresh.momentum == opt.momentum
    for v, v2 in zip(opt._velocity, fresh._velocity):
        assert np.array_equal(v, v2)


@pytest.mark.parametrize("seed", range(12))
def test_corruption_never_raises_raw_exceptions(seed, tmp_path):
    """Flipped bytes: either an identical load or a typed ArtifactError."""
    rng = np.random.default_rng(3000 + seed)
    deployed = random_deployed(rng)
    path = tmp_path / "d.npz"
    save_deployed(deployed, path)
    blob = bytearray(path.read_bytes())
    reference = engine_fingerprint(deployed)
    for _ in range(6):
        corrupted = bytearray(blob)
        pos = int(rng.integers(0, len(corrupted)))
        corrupted[pos] ^= int(rng.integers(1, 256))
        bad = tmp_path / "bad.npz"
        bad.write_bytes(bytes(corrupted))
        try:
            loaded = load_deployed(bad)
        except ArtifactError:
            continue  # the typed hierarchy is the only acceptable failure
        # A flip that slipped through every check must not have changed
        # the executable content.
        assert engine_fingerprint(loaded) == reference


@pytest.mark.parametrize("seed", range(6))
def test_truncation_never_raises_raw_exceptions(seed, tmp_path):
    rng = np.random.default_rng(4000 + seed)
    deployed = random_deployed(rng)
    path = tmp_path / "d.npz"
    save_deployed(deployed, path)
    blob = path.read_bytes()
    for frac in (0.1, 0.5, 0.9, 0.99):
        cut = tmp_path / "cut.npz"
        cut.write_bytes(blob[: int(len(blob) * frac)])
        with pytest.raises(ArtifactError):
            load_deployed(cut)
