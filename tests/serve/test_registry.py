"""ModelRegistry: lazy builds, compile-once engine cache, thread safety."""

import threading

import numpy as np
import pytest

from repro.serve import ModelRegistry, UnknownModelError


class TestRegistration:
    def test_builders_are_lazy(self, registry, build_counts):
        assert build_counts == {}  # nothing built at registration time
        registry.deployed("tiny_a")
        assert build_counts == {"tiny_a": 1}

    def test_builder_runs_once(self, registry, build_counts):
        first = registry.deployed("tiny_a")
        assert registry.deployed("tiny_a") is first
        assert build_counts["tiny_a"] == 1

    def test_names_and_contains(self, registry):
        assert registry.names() == ["tiny_a", "tiny_b"]
        assert "tiny_a" in registry and "nope" not in registry
        assert len(registry) == 2

    def test_unknown_model_raises_typed_keyerror(self, registry):
        with pytest.raises(UnknownModelError, match="unknown model 'ghost'"):
            registry.deployed("ghost")
        with pytest.raises(KeyError):  # mapping-flavored for generic callers
            registry.engine("ghost")

    def test_duplicate_register_needs_replace(self, registry, deployed_a):
        with pytest.raises(ValueError, match="already registered"):
            registry.register("tiny_a", lambda: deployed_a)
        registry.register("tiny_a", lambda: deployed_a, replace=True)
        assert registry.deployed("tiny_a") is deployed_a

    def test_empty_name_rejected(self, registry, deployed_a):
        with pytest.raises(ValueError, match="non-empty"):
            registry.register("", lambda: deployed_a)


class TestEngineCache:
    def test_cache_hit_returns_same_object_and_outputs(self, registry):
        engine = registry.engine("tiny_a")
        x = np.random.default_rng(3).normal(size=(9, 6)).astype(np.float32)
        baseline = engine.run(x)
        again = registry.engine("tiny_a")
        assert again is engine
        assert np.array_equal(again.run(x), baseline)
        stats = registry.cache_stats()
        assert stats == {"engines": 1, "hits": 1, "misses": 1}

    def test_identical_content_shares_one_engine(self, registry, make_tiny_deployed):
        """Content addressing: a rebuilt-but-identical artifact hits the cache."""
        rebuilt = make_tiny_deployed(seed=21, in_features=6, out_features=3, name="tiny_a")
        registry.register("tiny_a_clone", lambda: rebuilt)
        engine = registry.engine("tiny_a")
        assert registry.deployed("tiny_a_clone") is not registry.deployed("tiny_a")
        assert registry.engine("tiny_a_clone") is engine
        assert registry.cache_stats()["misses"] == 1

    def test_distinct_models_get_distinct_engines(self, registry):
        assert registry.engine("tiny_a") is not registry.engine("tiny_b")
        assert registry.cache_stats()["misses"] == 2

    def test_concurrent_engine_requests_compile_once(self, registry, build_counts):
        """16 threads race for one model: one build, one compile, one object."""
        barrier = threading.Barrier(16)
        engines = []
        errors = []

        def grab():
            try:
                barrier.wait()
                engines.append(registry.engine("tiny_a"))
            except Exception as e:  # pragma: no cover - failure reporting
                errors.append(e)

        threads = [threading.Thread(target=grab) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(engines) == 16
        assert all(e is engines[0] for e in engines)
        assert build_counts["tiny_a"] == 1
        assert registry.cache_stats()["misses"] == 1


class TestDefaults:
    def test_with_defaults_hosts_the_zoo_entry_points(self):
        registry = ModelRegistry.with_defaults()
        assert set(registry.names()) == {"cifar10_full", "alexnet"}
