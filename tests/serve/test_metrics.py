"""ModelMetrics: percentile monotonicity, fake-clock throughput, gauges."""

import math

import numpy as np
import pytest

from repro.serve import ModelMetrics, ServerRuntime
from repro.serve.metrics import LATENCY_RESERVOIR


@pytest.fixture
def metrics(fake_clock):
    return ModelMetrics("tiny_a", clock=fake_clock)


class TestLatencyPercentiles:
    def test_exact_values_on_fake_clock(self, metrics, fake_clock):
        for latency in (0.2, 0.4, 0.6, 0.8, 1.0):
            start = metrics.record_submit()
            fake_clock.advance(latency)
            metrics.record_done(start)
        assert metrics.latency_percentile(0) == pytest.approx(0.2)
        assert metrics.latency_percentile(50) == pytest.approx(0.6)
        assert metrics.latency_percentile(100) == pytest.approx(1.0)

    def test_percentiles_are_monotone(self, metrics, fake_clock):
        rng = np.random.default_rng(0)
        for latency in rng.uniform(1e-4, 2.0, size=200):
            start = metrics.record_submit()
            fake_clock.advance(float(latency))
            metrics.record_done(start)
        quantiles = [metrics.latency_percentile(q) for q in (0, 10, 25, 50, 75, 90, 99, 100)]
        assert quantiles == sorted(quantiles)

    def test_nearest_rank_returns_observed_latencies(self, metrics, fake_clock):
        observed = {0.15, 0.35, 0.55}
        for latency in sorted(observed):
            start = metrics.record_submit()
            fake_clock.advance(latency)
            metrics.record_done(start)
        for q in (1, 33, 50, 66, 99):
            assert round(metrics.latency_percentile(q), 9) in {round(v, 9) for v in observed}

    def test_nan_before_any_completion(self, metrics):
        assert math.isnan(metrics.latency_percentile(50))

    def test_invalid_percentile_rejected(self, metrics):
        with pytest.raises(ValueError, match="percentile"):
            metrics.latency_percentile(101)
        with pytest.raises(ValueError, match="percentile"):
            metrics.latency_percentile(-1)

    def test_reservoir_is_bounded(self, metrics, fake_clock):
        for _ in range(LATENCY_RESERVOIR + 100):
            metrics.record_done(fake_clock())
        assert len(metrics._latencies) == LATENCY_RESERVOIR


class TestThroughput:
    def test_matches_request_count_over_fake_clock(self, metrics, fake_clock):
        for _ in range(10):
            start = metrics.record_submit()
            metrics.record_done(start)
        fake_clock.advance(2.0)
        assert metrics.throughput_rps() == pytest.approx(5.0)
        assert metrics.completed == 10

    def test_zero_elapsed_reports_zero_not_inf(self, metrics):
        start = metrics.record_submit()
        metrics.record_done(start)
        assert metrics.throughput_rps() == 0.0


class TestCountersAndSnapshot:
    def test_mean_fill(self, metrics):
        for n in (4, 4, 2):
            for _ in range(n):
                metrics.record_done(metrics.record_submit())
            metrics.record_batch(n)
        assert metrics.mean_fill == pytest.approx(10 / 3)

    def test_mean_fill_counts_claimed_not_completed(self, metrics):
        metrics.record_batch(4)  # a batch whose requests all failed
        assert metrics.completed == 0
        assert metrics.mean_fill == pytest.approx(4.0)
        assert metrics.snapshot()["mean_fill"] == pytest.approx(4.0)

    def test_snapshot_is_complete(self, metrics, fake_clock):
        start = metrics.record_submit()
        fake_clock.advance(0.5)
        metrics.record_done(start)
        metrics.record_claim(1)
        metrics.record_batch(1)
        metrics.record_reject(2)
        metrics.record_crash(1)
        for _ in range(3):
            metrics.record_submit()  # three admitted, unclaimed: gauge = 3
        snap = metrics.snapshot()
        assert snap["model"] == "tiny_a"
        assert snap["submitted"] == 4 and snap["completed"] == 1
        assert snap["rejected"] == 2 and snap["queue_depth"] == 3
        assert snap["crashed"] == 1
        assert snap["batches"] == 1 and snap["mean_fill"] == 1.0
        assert snap["latency_p50_s"] == pytest.approx(0.5)
        assert snap["latency_p99_s"] == pytest.approx(0.5)
        assert snap["throughput_rps"] == pytest.approx(2.0)


class TestWindowedPercentiles:
    def test_window_sees_only_recent_completions(self, metrics, fake_clock):
        for latency in (1.0, 1.0, 1.0, 0.1, 0.1):
            start = metrics.record_submit()
            fake_clock.advance(latency)
            metrics.record_done(start)
        assert metrics.latency_percentile(99) == pytest.approx(1.0)
        assert metrics.latency_percentile(99, window=2) == pytest.approx(0.1)

    def test_invalid_window_rejected(self, metrics):
        with pytest.raises(ValueError, match="window"):
            metrics.latency_percentile(50, window=0)

    def test_window_larger_than_reservoir_reads_everything(self, metrics, fake_clock):
        """An oversize window is the whole-reservoir view, not an error
        and not a silent empty readout."""
        for latency in (0.2, 0.4, 0.6):
            start = metrics.record_submit()
            fake_clock.advance(latency)
            metrics.record_done(start)
        huge = LATENCY_RESERVOIR * 10
        assert metrics.latency_percentile(50, window=huge) == metrics.latency_percentile(50)
        assert metrics.latency_percentile(0, window=huge) == pytest.approx(0.2)
        assert metrics.latency_percentile(100, window=huge) == pytest.approx(0.6)

    def test_extreme_percentiles_with_window(self, metrics, fake_clock):
        """q=0 / q=100 inside a window are the window's min/max."""
        for latency in (1.0, 0.3, 0.7):
            start = metrics.record_submit()
            fake_clock.advance(latency)
            metrics.record_done(start)
        assert metrics.latency_percentile(0, window=2) == pytest.approx(0.3)
        assert metrics.latency_percentile(100, window=2) == pytest.approx(0.7)

    @pytest.mark.parametrize("bad", [2.5, "3", True, float("nan")])
    def test_non_integral_window_rejected(self, metrics, fake_clock, bad):
        """A float window used to slip past the positivity check and blow
        up as a TypeError inside the slice; now it is the documented
        ValueError whether or not latencies were recorded."""
        with pytest.raises(ValueError, match="window"):
            metrics.latency_percentile(50, window=bad)
        start = metrics.record_submit()
        fake_clock.advance(0.5)
        metrics.record_done(start)
        with pytest.raises(ValueError, match="window"):
            metrics.latency_percentile(50, window=bad)

    def test_nan_percentile_rejected(self, metrics):
        with pytest.raises(ValueError, match="percentile"):
            metrics.latency_percentile(float("nan"))

    def test_numpy_integer_window_accepted(self, metrics, fake_clock):
        for latency in (0.2, 0.8):
            start = metrics.record_submit()
            fake_clock.advance(latency)
            metrics.record_done(start)
        assert metrics.latency_percentile(99, window=np.int64(1)) == pytest.approx(0.8)


class TestQueueDepthGauge:
    def test_gauge_tracks_pending_and_returns_to_zero_after_drain(
        self, registry, fake_clock
    ):
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            max_batch=4,
            max_queue=64,
            clock=fake_clock,
        )
        x = np.random.default_rng(2).normal(size=(10, 6)).astype(np.float32)
        for sample in x:  # unstarted runtime: depth grows deterministically
            runtime.submit("tiny_a", sample)
        metrics = runtime.metrics("tiny_a")
        assert metrics.queue_depth == 10
        assert runtime.queue_depth("tiny_a") == 10
        runtime.stop(drain=True)
        assert metrics.queue_depth == 0
        assert metrics.completed == 10

    def test_reject_never_touches_the_gauge(self, metrics):
        """Regression: a shed request must not leak a depth increment."""
        metrics.record_reject()
        metrics.record_reject(5)
        assert metrics.queue_depth == 0
        assert metrics.rejected == 6

    def test_admission_rejection_leaves_gauge_at_queue_size(self, registry, fake_clock):
        """Regression: the old gauge was set by call sites and the reject
        path could leave it stale; now sheds are depth-neutral by
        construction and the gauge equals the real backlog throughout."""
        from repro.serve import QueueFullError

        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            max_batch=4,
            max_queue=3,
            clock=fake_clock,
        )
        metrics = runtime.metrics("tiny_a")
        x = np.random.default_rng(3).normal(size=(5, 6)).astype(np.float32)
        for sample in x[:3]:
            runtime.submit("tiny_a", sample)
        for sample in x[3:]:  # over the bound: shed, gauge untouched
            with pytest.raises(QueueFullError):
                runtime.submit("tiny_a", sample)
        assert metrics.queue_depth == 3 == runtime.queue_depth("tiny_a")
        assert metrics.rejected == 2 and metrics.submitted == 3
        runtime.stop(drain=True)
        assert metrics.queue_depth == 0
        assert metrics.completed == 3

    def test_no_drain_shutdown_claims_then_rejects(self, registry, fake_clock):
        """Post-admission rejection = claim + reject: depth returns to
        zero and the rejects are counted, with nothing double-counted."""
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            max_batch=4,
            max_queue=64,
            clock=fake_clock,
        )
        futures = [
            runtime.submit("tiny_a", s)
            for s in np.random.default_rng(4).normal(size=(4, 6)).astype(np.float32)
        ]
        assert runtime.metrics("tiny_a").queue_depth == 4
        runtime.stop(drain=False)
        metrics = runtime.metrics("tiny_a")
        assert metrics.queue_depth == 0
        assert metrics.rejected == 4 and metrics.completed == 0
        for future in futures:
            with pytest.raises(Exception, match="stopped"):
                future.result(timeout=5)

    def test_negative_gauge_is_a_loud_call_site_bug(self, metrics):
        metrics.record_submit()
        with pytest.raises(AssertionError, match="negative"):
            metrics.record_claim(2)
