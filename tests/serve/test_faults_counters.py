"""Regression: fault-double call counters are race-free under threads.

The doubles promise "each run attempt takes the next number" — a contract
the supervisor crash tests rely on to schedule the Nth call.  The bare
``self.calls += 1`` read-modify-write could drop increments under
concurrent callers, silently skipping a scheduled crash.  These tests
hammer the counters from many threads and require exact totals, and pin
that a scheduled crash index fires exactly once across threads.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve.faults import (
    CrashError,
    CrashingEngine,
    FlakyBuilder,
    LatencySpikeEngine,
)

THREADS = 8
CALLS_PER_THREAD = 200
TOTAL = THREADS * CALLS_PER_THREAD


class _NullEngine:
    input_shape = (1,)
    output_shape = (1,)
    deployed = None

    def run(self, batch):
        return batch


def _hammer(fn):
    with ThreadPoolExecutor(THREADS) as pool:
        list(pool.map(lambda _: fn(), range(TOTAL)))


def test_crashing_engine_counts_every_call_exactly_once():
    engine = CrashingEngine(_NullEngine(), crash_on=())
    batch = np.zeros((1,), dtype=np.float64)
    _hammer(lambda: engine.run(batch))
    assert engine.calls == TOTAL


def test_crashing_engine_scheduled_crash_fires_exactly_once():
    engine = CrashingEngine(_NullEngine(), crash_on={TOTAL // 2}, label="probe")
    batch = np.zeros((1,), dtype=np.float64)
    crashes = []

    def attempt():
        try:
            engine.run(batch)
        except CrashError as exc:
            crashes.append(str(exc))

    _hammer(attempt)
    assert engine.calls == TOTAL
    assert len(crashes) == 1
    assert f"call {TOTAL // 2}" in crashes[0]


def test_flaky_builder_counts_every_attempt_exactly_once():
    builder = FlakyBuilder(artifact="a", fail_on=())
    _hammer(builder)
    assert builder.calls == TOTAL


def test_flaky_builder_scheduled_failures_fire_exactly_once_each():
    fail_on = {10, TOTAL // 2, TOTAL}
    builder = FlakyBuilder(artifact="a", fail_on=fail_on, label="flaky")
    failures = []

    def attempt():
        try:
            builder()
        except CrashError as exc:
            failures.append(str(exc))

    _hammer(attempt)
    assert builder.calls == TOTAL
    assert len(failures) == len(fail_on)


def test_sequential_semantics_unchanged():
    engine = CrashingEngine(_NullEngine(), crash_on={2}, label="x")
    batch = np.zeros((1,), dtype=np.float64)
    engine.run(batch)
    with pytest.raises(CrashError, match="call 2"):
        engine.run(batch)
    engine.run(batch)
    assert engine.calls == 3


def test_latency_spike_engine_stalls_scheduled_calls_only():
    stalls = []
    engine = LatencySpikeEngine(
        _NullEngine(), spike_on={2, 4}, spike_s=0.25, sleep=stalls.append
    )
    batch = np.arange(3, dtype=np.float64)
    for _ in range(5):
        assert np.array_equal(engine.run(batch), batch)  # always delegates
    assert engine.calls == 5
    assert stalls == [0.25, 0.25]  # exactly the scheduled calls, fake clock


def test_latency_spike_engine_counts_every_call_exactly_once():
    stalls = []
    engine = LatencySpikeEngine(_NullEngine(), spike_on={TOTAL // 2}, sleep=stalls.append)
    batch = np.zeros((1,), dtype=np.float64)
    _hammer(lambda: engine.run(batch))
    assert engine.calls == TOTAL
    assert stalls == [engine.spike_s]
