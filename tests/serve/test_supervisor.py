"""Supervision tree under fault injection: crash, restart, quarantine, rollover.

Every test here is deterministic: crashes are scheduled by call number
(:mod:`repro.serve.faults`), the clock is fake, and the backoff sleep
advances that clock while logging each requested duration — so restart
sequences are asserted *exactly*, with no wall-clock waits.  Threaded
tests synchronise only on future resolution (never ``time.sleep``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.engine import BatchedEngine
from repro.io.store import ArtifactStore
from repro.serve import (
    AdaptiveBatchPolicy,
    CrashError,
    CrashingEngine,
    ModelQuarantinedError,
    ModelRegistry,
    ServerClosedError,
    ServerRuntime,
    SupervisorPolicy,
    crash_schedule,
)
from repro.serve.faults import FlakyBuilder
from repro.serve.supervisor import BACKOFF, QUARANTINED, RUNNING

from conftest import tiny_deployed


class ScriptedProvider:
    """An ``engine_provider`` that replays a scripted outcome per call.

    Each hosted model maps to a list of outcomes consumed in call order
    (the last entry is sticky): an exception instance is raised, a
    ``(engine, label)`` tuple is returned.  Calls are recorded so tests
    can assert exactly when the runtime resolved engines.
    """

    def __init__(self, scripts):
        self.scripts = {name: list(items) for name, items in scripts.items()}
        self.calls = []

    def __call__(self, name, version):
        self.calls.append((name, version))
        script = self.scripts[name]
        item = script.pop(0) if len(script) > 1 else script[0]
        if isinstance(item, BaseException):
            raise item
        return item


@pytest.fixture
def samples_a():
    return np.random.default_rng(7).normal(scale=0.5, size=(16, 6)).astype(np.float32)


@pytest.fixture
def samples_b():
    return np.random.default_rng(8).normal(scale=0.5, size=(16, 5)).astype(np.float32)


class TestSupervisorPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = SupervisorPolicy(
            max_failures=10, backoff_initial_s=0.05, backoff_factor=4.0, backoff_cap_s=0.4
        )
        assert [policy.backoff_s(k) for k in (1, 2, 3, 4, 5)] == pytest.approx(
            [0.05, 0.2, 0.4, 0.4, 0.4]
        )

    def test_backoff_undefined_before_first_failure(self):
        with pytest.raises(ValueError, match="failure"):
            SupervisorPolicy().backoff_s(0)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(max_failures=0), "max_failures"),
            (dict(backoff_initial_s=0.0), "backoff_initial_s"),
            (dict(backoff_factor=0.5), "backoff_factor"),
            (dict(backoff_initial_s=1.0, backoff_cap_s=0.5), "backoff_cap_s"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            SupervisorPolicy(**kwargs)


class TestCrashRestart:
    def test_poisoned_batch_kills_actor_and_restart_serves_the_rest(
        self, registry, engine_a, fake_clock, fake_sleep, backoff_log, samples_a
    ):
        crashy = CrashingEngine(engine_a, crash_on={1}, label="crashy")
        provider = ScriptedProvider(
            {"tiny_a": [(crashy, "bad-v1"), (engine_a, "good-v2")]}
        )
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            max_batch=2,
            clock=fake_clock,
            sleep=fake_sleep,
            engine_provider=provider,
            policy=SupervisorPolicy(max_failures=3, backoff_initial_s=0.05),
        )
        futures = [runtime.submit("tiny_a", s) for s in samples_a[:4]]
        runtime.stop(drain=True)  # unstarted: drains inline, deterministically

        # First claimed batch (2 requests) died with the injected error...
        for future in futures[:2]:
            with pytest.raises(CrashError, match="scheduled crash"):
                future.result(timeout=0)
            assert future.serving_version == "bad-v1"
        # ...and the rest were served bit-identically after the restart.
        got = np.stack([f.result(timeout=0) for f in futures[2:]])
        assert np.array_equal(got, engine_a.run(np.stack(samples_a[2:4])))
        assert [f.serving_version for f in futures[2:]] == ["good-v2", "good-v2"]

        assert backoff_log == pytest.approx([0.05])
        snap = runtime.health()["models"]["tiny_a"]
        assert snap["state"] == RUNNING
        assert snap["restarts"] == 1 and snap["crashes"] == 1
        assert snap["consecutive_failures"] == 0  # reset by the successful batch
        assert snap["active_version"] == "good-v2"
        metrics = runtime.metrics("tiny_a")
        assert metrics.submitted == 4 and metrics.completed == 2
        assert metrics.crashed == 2 and metrics.queue_depth == 0

    def test_crash_in_one_model_never_touches_the_other(
        self, registry, engine_a, engine_b, fake_clock, fake_sleep, samples_a, samples_b
    ):
        always_crash = CrashingEngine(engine_a, crash_on=range(1, 100), label="doomed")
        provider = ScriptedProvider(
            {"tiny_a": [(always_crash, "bad")], "tiny_b": [(engine_b, "fine")]}
        )
        runtime = ServerRuntime(
            registry,
            ["tiny_a", "tiny_b"],
            workers=1,
            max_batch=4,
            clock=fake_clock,
            sleep=fake_sleep,
            engine_provider=provider,
            policy=SupervisorPolicy(max_failures=2, backoff_initial_s=0.05),
        )
        futures_a = [runtime.submit("tiny_a", s) for s in samples_a[:8]]
        futures_b = [runtime.submit("tiny_b", s) for s in samples_b[:8]]
        runtime.stop(drain=True)

        assert all(f.exception(timeout=0) is not None for f in futures_a)
        got_b = np.stack([f.result(timeout=0) for f in futures_b])
        assert np.array_equal(got_b, engine_b.run(np.stack(samples_b[:8])))
        health = runtime.health()["models"]
        assert health["tiny_a"]["state"] == QUARANTINED
        assert health["tiny_b"]["state"] == RUNNING
        assert health["tiny_b"]["crashes"] == 0


class TestQuarantine:
    def test_quarantined_after_max_consecutive_failures(
        self, registry, engine_a, fake_clock, fake_sleep, backoff_log, samples_a
    ):
        always_crash = CrashingEngine(engine_a, crash_on=range(1, 100))
        provider = ScriptedProvider({"tiny_a": [(always_crash, "bad")]})
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            max_batch=2,
            clock=fake_clock,
            sleep=fake_sleep,
            engine_provider=provider,
            policy=SupervisorPolicy(max_failures=3, backoff_initial_s=0.05, backoff_factor=2.0),
        )
        futures = [runtime.submit("tiny_a", s) for s in samples_a[:6]]
        runtime.stop(drain=True)

        for future in futures:
            with pytest.raises(CrashError):
                future.result(timeout=0)
        # Two restarts (after failures 1 and 2), then quarantine — never a
        # third backoff.  Exact capped-exponential sequence:
        assert backoff_log == pytest.approx([0.05, 0.1])
        snap = runtime.health()["models"]["tiny_a"]
        assert snap["state"] == QUARANTINED
        assert snap["consecutive_failures"] == 3
        assert snap["restart_budget_remaining"] == 0
        assert "CrashError" in snap["last_error"]

    def test_submit_to_quarantined_model_raises_typed_error(
        self, registry, engine_a, fake_clock, samples_a
    ):
        always_crash = CrashingEngine(engine_a, crash_on=range(1, 100))
        provider = ScriptedProvider({"tiny_a": [(always_crash, "bad")]})
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            max_batch=8,
            clock=fake_clock,
            sleep=fake_clock.sleeper(),
            engine_provider=provider,
            policy=SupervisorPolicy(max_failures=1),
        )
        runtime.start()
        future = runtime.submit("tiny_a", samples_a[0])
        with pytest.raises(CrashError):
            future.result(timeout=10)
        # The single failure spent the whole budget: quarantined.
        with pytest.raises(ModelQuarantinedError, match="quarantined after 1"):
            runtime.submit("tiny_a", samples_a[1])
        assert runtime.metrics("tiny_a").rejected == 1
        runtime.stop(drain=True)

    def test_backoff_sequence_is_capped_exponential_until_quarantine(
        self, registry, fake_clock, fake_sleep, backoff_log, samples_a
    ):
        provider = ScriptedProvider({"tiny_a": [CrashError("build always fails")]})
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            max_batch=4,
            clock=fake_clock,
            sleep=fake_sleep,
            engine_provider=provider,
            policy=SupervisorPolicy(
                max_failures=6, backoff_initial_s=0.05, backoff_factor=4.0, backoff_cap_s=0.4
            ),
        )
        future = runtime.submit("tiny_a", samples_a[0])
        runtime.stop(drain=True)
        with pytest.raises(ModelQuarantinedError):
            future.result(timeout=0)
        # prime = failure 1; five backoffs before failures 2..6; then
        # quarantine fails the backlog so the drain terminates.
        assert backoff_log == pytest.approx([0.05, 0.2, 0.4, 0.4, 0.4])
        assert len(provider.calls) == 6


class TestFlakyBuilds:
    def test_build_crash_at_construction_starts_supervised_not_fatal(
        self, deployed_a, registry, engine_a, fake_clock, fake_sleep, backoff_log, samples_a
    ):
        flaky = FlakyBuilder(deployed_a, fail_on={1}, label="cold-start")
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            max_batch=4,
            clock=fake_clock,
            sleep=fake_sleep,
            engine_provider=flaky.provider(BatchedEngine, version_label="healed"),
            policy=SupervisorPolicy(max_failures=3, backoff_initial_s=0.05),
        )
        # Construction survived the build crash; the actor starts in backoff.
        snap = runtime.health()["models"]["tiny_a"]
        assert snap["state"] == BACKOFF
        assert snap["consecutive_failures"] == 1
        futures = [runtime.submit("tiny_a", s) for s in samples_a[:4]]
        runtime.stop(drain=True)
        got = np.stack([f.result(timeout=0) for f in futures])
        assert np.array_equal(got, engine_a.run(np.stack(samples_a[:4])))
        assert backoff_log == pytest.approx([0.05])
        assert flaky.calls == 2
        assert runtime.health()["models"]["tiny_a"]["restarts"] == 1

    def test_permanently_broken_build_quarantines_and_drain_terminates(
        self, deployed_a, registry, fake_clock, fake_sleep, samples_a
    ):
        flaky = FlakyBuilder(deployed_a, fail_on=FlakyBuilder.ALWAYS)
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            max_batch=4,
            clock=fake_clock,
            sleep=fake_sleep,
            engine_provider=flaky.provider(BatchedEngine),
            policy=SupervisorPolicy(max_failures=2, backoff_initial_s=0.05),
        )
        futures = [runtime.submit("tiny_a", s) for s in samples_a[:3]]
        runtime.stop(drain=True)  # must return: quarantine fails the backlog
        for future in futures:
            with pytest.raises(ModelQuarantinedError):
                future.result(timeout=0)
        metrics = runtime.metrics("tiny_a")
        assert metrics.rejected == 3 and metrics.queue_depth == 0

    def test_flaky_registry_builder_is_supervised_too(
        self, deployed_a, engine_a, fake_clock, fake_sleep, samples_a
    ):
        # No injected provider: the *registry's* builder crashes once, and
        # the default provider path routes that through supervision.
        reg = ModelRegistry()
        reg.register("tiny_a", FlakyBuilder(deployed_a, fail_on={1}))
        runtime = ServerRuntime(
            reg,
            ["tiny_a"],
            workers=1,
            max_batch=4,
            clock=fake_clock,
            sleep=fake_sleep,
            policy=SupervisorPolicy(max_failures=3, backoff_initial_s=0.05),
        )
        assert runtime.health()["models"]["tiny_a"]["state"] == BACKOFF
        futures = [runtime.submit("tiny_a", s) for s in samples_a[:2]]
        runtime.stop(drain=True)
        got = np.stack([f.result(timeout=0) for f in futures])
        assert np.array_equal(got, engine_a.run(np.stack(samples_a[:2])))


class TestRollover:
    def test_in_memory_rollover_swaps_content_and_labels_versions(
        self, registry, engine_a, fake_clock, samples_a
    ):
        runtime = ServerRuntime(
            registry, ["tiny_a"], workers=1, max_batch=4, clock=fake_clock
        ).start()
        first = [runtime.submit("tiny_a", s) for s in samples_a[:4]]
        got = np.stack([f.result(timeout=10) for f in first])
        assert np.array_equal(got, engine_a.run(np.stack(samples_a[:4])))
        v1 = runtime.health()["models"]["tiny_a"]["active_version"]

        new_artifact = tiny_deployed(seed=99, in_features=6, out_features=3, name="tiny_a")
        registry.register("tiny_a", lambda: new_artifact, replace=True)
        label = runtime.rollover("tiny_a")
        assert label is not None and label != v1
        second = [runtime.submit("tiny_a", s) for s in samples_a[4:8]]
        got2 = np.stack([f.result(timeout=10) for f in second])
        assert np.array_equal(got2, BatchedEngine(new_artifact).run(np.stack(samples_a[4:8])))
        assert all(f.serving_version == v1 for f in first)
        assert all(f.serving_version == label for f in second)
        runtime.stop(drain=True)

    def test_store_backed_rollover_tracks_published_versions(
        self, tmp_path, deployed_a, engine_a, fake_clock, samples_a
    ):
        store = ArtifactStore(tmp_path / "store")
        assert store.publish_deployed("tiny_a", deployed_a) == 1
        reg = ModelRegistry.from_store(store)
        runtime = ServerRuntime(
            reg, ["tiny_a"], workers=1, max_batch=4, clock=fake_clock
        ).start()
        f1 = runtime.submit("tiny_a", samples_a[0])
        assert np.array_equal(
            f1.result(timeout=10), engine_a.run(samples_a[0][None])[0]
        )
        assert f1.serving_version == "v0001"

        newer = tiny_deployed(seed=77, in_features=6, out_features=3, name="tiny_a")
        assert store.publish_deployed("tiny_a", newer) == 2
        assert runtime.rollover("tiny_a") == "v0002"  # None = newest published
        f2 = runtime.submit("tiny_a", samples_a[1])
        assert np.array_equal(
            f2.result(timeout=10), BatchedEngine(newer).run(samples_a[1][None])[0]
        )
        assert f2.serving_version == "v0002"

        # Roll *back* by pinning the explicit version.
        assert runtime.rollover("tiny_a", version=1) == "v0001"
        f3 = runtime.submit("tiny_a", samples_a[2])
        assert np.array_equal(
            f3.result(timeout=10), engine_a.run(samples_a[2][None])[0]
        )
        assert f3.serving_version == "v0001"
        runtime.stop(drain=True)

    def test_rollover_reinstates_a_quarantined_model(
        self, registry, engine_a, fake_clock, samples_a
    ):
        provider = ScriptedProvider(
            {"tiny_a": [CrashError("broken"), (engine_a, "fixed")]}
        )
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            max_batch=4,
            clock=fake_clock,
            sleep=fake_clock.sleeper(),
            engine_provider=provider,
            policy=SupervisorPolicy(max_failures=1),
        ).start()
        # prime spent the whole failure budget: quarantined immediately.
        with pytest.raises(ModelQuarantinedError):
            runtime.submit("tiny_a", samples_a[0])
        assert runtime.rollover("tiny_a") == "fixed"
        snap = runtime.health()["models"]["tiny_a"]
        assert snap["state"] == RUNNING and snap["consecutive_failures"] == 0
        future = runtime.submit("tiny_a", samples_a[0])
        assert np.array_equal(
            future.result(timeout=10), engine_a.run(samples_a[0][None])[0]
        )
        runtime.stop(drain=True)

    def test_failed_rollover_leaves_current_version_serving(
        self, registry, engine_a, fake_clock, samples_a
    ):
        provider = ScriptedProvider(
            {"tiny_a": [(engine_a, "v-live"), CrashError("bad artifact")]}
        )
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            max_batch=4,
            clock=fake_clock,
            engine_provider=provider,
        )
        with pytest.raises(CrashError, match="bad artifact"):
            runtime.rollover("tiny_a")
        snap = runtime.health()["models"]["tiny_a"]
        assert snap["state"] == RUNNING and snap["active_version"] == "v-live"
        future = runtime.submit("tiny_a", samples_a[0])
        runtime.stop(drain=True)
        assert np.array_equal(
            future.result(timeout=0), engine_a.run(samples_a[0][None])[0]
        )

    def test_rollover_after_stop_is_refused(self, registry, fake_clock):
        runtime = ServerRuntime(registry, ["tiny_a"], workers=1, clock=fake_clock)
        runtime.stop()
        with pytest.raises(ServerClosedError):
            runtime.rollover("tiny_a")


class TestAdaptiveBatchingIntegration:
    def test_claims_shrink_when_p99_breaches_target(
        self, registry, fake_clock, samples_a
    ):
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            clock=fake_clock,
            batch_policy=AdaptiveBatchPolicy(
                min_batch=1, max_batch=8, target_p99_s=0.5, step=2.0, slo_window=16
            ),
        )
        metrics = runtime.metrics("tiny_a")
        # Seed the SLO window with over-target latencies: every claim
        # re-consults the policy, so sizes halve 8 -> 4 -> 2 -> 1 -> 1.
        for _ in range(4):
            start = fake_clock()
            fake_clock.advance(1.0)
            metrics.record_done(start)
        futures = [runtime.submit("tiny_a", s) for s in samples_a[:8]]
        runtime.stop(drain=True)
        assert all(f.done() for f in futures)
        assert metrics.batches == 4  # 4 + 2 + 1 + 1
        assert runtime.health()["models"]["tiny_a"]["current_batch"] == 1
        slo = runtime.health()["models"]["tiny_a"]["slo"]
        assert slo["target_p99_s"] == 0.5 and not slo["met"]

    def test_claims_grow_back_under_pressure_once_slo_recovers(
        self, registry, fake_clock, samples_a
    ):
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            clock=fake_clock,
            max_queue=64,
            batch_policy=AdaptiveBatchPolicy(
                min_batch=1, max_batch=8, target_p99_s=0.5, step=2.0,
                grow_pressure=2.0, slo_window=4,
            ),
        )
        metrics = runtime.metrics("tiny_a")
        for _ in range(4):  # slow history fills the (tiny) window
            start = fake_clock()
            fake_clock.advance(1.0)
            metrics.record_done(start)
        x = np.random.default_rng(9).normal(scale=0.5, size=(30, 6)).astype(np.float32)
        futures = [runtime.submit("tiny_a", s) for s in x]
        runtime.stop(drain=True)
        assert all(f.result(timeout=0) is not None for f in futures)
        # Claim 1 shrinks (8 -> 4) on the stale slow window; its 4
        # zero-latency completions (fake clock) flush the window, and
        # the 26-deep backlog grows claims back to the ceiling:
        # 4 + 8 + 8 + 8 + 2 = 30 requests in 5 batches.
        assert metrics.batches == 5
        assert runtime.health()["models"]["tiny_a"]["current_batch"] == 8


class TestHealthSurface:
    def test_health_is_structured_and_json_serializable(
        self, registry, fake_clock, samples_a
    ):
        runtime = ServerRuntime(
            registry,
            ["tiny_a", "tiny_b"],
            workers=3,
            max_batch=8,
            max_queue=32,
            clock=fake_clock,
            target_p99_s=0.25,
        )
        futures = [runtime.submit("tiny_a", s) for s in samples_a[:3]]
        health = runtime.health()
        assert health["workers_per_model"] == 3
        assert health["max_queue"] == 32 and health["stopping"] is False
        assert set(health["models"]) == {"tiny_a", "tiny_b"}
        snap = health["models"]["tiny_a"]
        for key in (
            "state", "active_version", "restarts", "consecutive_failures",
            "restart_budget_remaining", "crashes", "last_error", "current_batch",
            "queue_depth", "submitted", "completed", "rejected", "crashed",
            "latency_p99_s", "throughput_rps", "slo",
        ):
            assert key in snap, key
        assert snap["queue_depth"] == 3
        assert health["policy"]["max_failures"] == 3
        assert health["batch_policy"]["target_p99_s"] == 0.25
        json.dumps(health)  # NaN percentiles are permitted by json's default
        runtime.stop(drain=True)
        assert all(f.done() for f in futures)
        assert runtime.health()["stopping"] is True


@pytest.mark.stress
class TestSupervisionStress:
    def test_actors_killed_mid_stream_recover_and_drain_clean(
        self, registry, engine_a, engine_b, samples_a, samples_b
    ):
        """Real threads, real (tiny) backoff: crashes injected mid-stream
        must restart-with-backoff, a permanently broken model must
        quarantine, and shutdown must drain with every future resolved —
        nothing dropped, nothing double-served, healthy model untouched."""
        crashy = CrashingEngine(engine_a, crash_on=crash_schedule(5, n_calls=40, n_crashes=6))
        provider = ScriptedProvider(
            {"tiny_a": [(crashy, "flaky")], "tiny_b": [(engine_b, "solid")]}
        )
        runtime = ServerRuntime(
            registry,
            ["tiny_a", "tiny_b"],
            workers=3,
            max_batch=4,
            max_queue=4096,
            engine_provider=provider,
            policy=SupervisorPolicy(max_failures=50, backoff_initial_s=0.001, backoff_cap_s=0.01),
        ).start()
        futures_a, futures_b = [], []
        rng = np.random.default_rng(11)
        for i in range(200):
            futures_a.append(runtime.submit("tiny_a", samples_a[i % 16]))
            futures_b.append(runtime.submit("tiny_b", samples_b[i % 16]))
            if i == 100:
                runtime.rollover("tiny_a")  # hot swap under load
        runtime.stop(drain=True)

        resolved_a = sum(1 for f in futures_a if f.done())
        assert resolved_a == len(futures_a)  # nothing dropped
        ok, crashed = 0, 0
        for i, future in enumerate(futures_a):
            error = future.exception(timeout=0)
            if error is None:
                expected = engine_a.run(samples_a[i % 16][None])[0]
                assert np.array_equal(future.result(timeout=0), expected)
                ok += 1
            else:
                assert isinstance(error, CrashError)
                crashed += 1
        assert crashed >= 1 and ok + crashed == 200
        # The healthy model never saw a failure.
        got_b = [f.result(timeout=0) for f in futures_b]
        for i, row in enumerate(got_b):
            assert np.array_equal(row, engine_b.run(samples_b[i % 16][None])[0])
        health = runtime.health()["models"]
        assert health["tiny_a"]["crashes"] >= 1
        assert health["tiny_a"]["restarts"] >= 1  # restarted with backoff
        assert health["tiny_b"]["crashes"] == 0
        metrics_a = runtime.metrics("tiny_a")
        assert metrics_a.submitted == 200
        assert metrics_a.completed + metrics_a.crashed + metrics_a.rejected == 200
        assert metrics_a.queue_depth == 0

    def test_permanently_broken_model_quarantines_under_load(
        self, registry, engine_a, samples_a
    ):
        doomed = CrashingEngine(engine_a, crash_on=range(1, 10_000), label="doomed")
        provider = ScriptedProvider({"tiny_a": [(doomed, "bad")]})
        runtime = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=2,
            max_batch=4,
            max_queue=4096,
            engine_provider=provider,
            policy=SupervisorPolicy(max_failures=3, backoff_initial_s=0.001, backoff_cap_s=0.01),
        ).start()
        futures = [runtime.submit("tiny_a", samples_a[i % 16]) for i in range(100)]
        runtime.stop(drain=True)  # drain terminates because quarantine fails the backlog
        assert all(f.done() for f in futures)
        errors = {type(f.exception(timeout=0)).__name__ for f in futures}
        assert errors <= {"CrashError", "ModelQuarantinedError"}
        assert runtime.health()["models"]["tiny_a"]["state"] == QUARANTINED
