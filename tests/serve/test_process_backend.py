"""ServerRuntime process-worker mode: identity, metrics, health, pool death."""

import time

import numpy as np
import pytest

from repro.parallel import PoolClosedError, SharedEngineProxy, WorkerCrashedError
from repro.parallel import worker as worker_mod
from repro.serve import ModelQuarantinedError, ServerRuntime, SupervisorPolicy


def _requests(n, features, seed=5):
    return np.random.default_rng(seed).normal(scale=0.5, size=(n, features)).astype(np.float32)


class TestProcessServing:
    def test_bit_identical_with_unchanged_metrics_and_health(
        self, registry, engine_a, engine_b
    ):
        """Process placement is invisible except for where the FLOPs run."""
        xa, xb = _requests(17, 6, seed=7), _requests(13, 5, seed=8)
        rt = ServerRuntime(
            registry,
            ["tiny_a", "tiny_b"],
            workers=2,
            max_batch=4,
            max_queue=64,
            backend="process",
            pool_workers=2,
        )
        rt.start()
        fa = [rt.submit("tiny_a", s) for s in xa]
        fb = [rt.submit("tiny_b", s) for s in xb]
        assert np.array_equal(np.stack([f.result(30) for f in fa]), engine_a.run(xa))
        assert np.array_equal(np.stack([f.result(30) for f in fb]), engine_b.run(xb))

        # Metrics and health keep their thread-backend shape and meaning.
        ma, mb = rt.metrics("tiny_a"), rt.metrics("tiny_b")
        assert ma.completed == 17 and mb.completed == 13
        health = rt.health()
        assert set(health["models"]) == {"tiny_a", "tiny_b"}
        assert all(m["state"] == "running" for m in health["models"].values())

        # Each hosted model was published exactly once into the arena,
        # and the serving workers decoded nothing themselves.
        assert len(rt._arena) == 2 and rt._arena.created == 2
        stats = rt._runner.call(worker_mod.worker_stats)
        assert stats["plane_decodes"] == 0
        assert stats["attached_segments"] <= 2
        rt.stop()

    def test_actors_hold_shared_engine_proxies(self, registry):
        rt = ServerRuntime(
            registry, ["tiny_a"], workers=1, backend="process", pool_workers=1
        )
        try:
            actor = rt._actors["tiny_a"]
            assert isinstance(actor.engine, SharedEngineProxy)
        finally:
            rt.stop(drain=False)

    def test_stop_closes_pool_and_unlinks_segments(self, registry, engine_a):
        from multiprocessing import shared_memory

        x = _requests(4, 6)
        rt = ServerRuntime(
            registry, ["tiny_a"], workers=1, backend="process", pool_workers=1
        ).start()
        futures = [rt.submit("tiny_a", s) for s in x]
        assert np.array_equal(np.stack([f.result(30) for f in futures]), engine_a.run(x))
        segment = next(iter(rt._arena._segments.values()))[1].segment
        rt.stop()
        with pytest.raises(PoolClosedError):
            rt._runner.submit(worker_mod.echo, 1)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment)

    def test_engines_without_artifacts_pass_through(self, registry, engine_a):
        """Test doubles lacking ``.deployed`` keep executing in-process."""

        class BareEngine:
            input_shape = engine_a.input_shape

            def run(self, x):
                return engine_a.run(x)

        bare = BareEngine()

        def provider(name, version):
            return bare, "v-test"

        x = _requests(3, 6)
        rt = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            backend="process",
            pool_workers=1,
            engine_provider=provider,
        ).start()
        try:
            futures = [rt.submit("tiny_a", s) for s in x]
            assert np.array_equal(
                np.stack([f.result(30) for f in futures]), engine_a.run(x)
            )
            assert rt._actors["tiny_a"].engine is bare
            assert len(rt._arena) == 0  # nothing published for the double
        finally:
            rt.stop(drain=False)

    def test_backend_validation(self, registry):
        with pytest.raises(ValueError, match="unknown backend"):
            ServerRuntime(registry, ["tiny_a"], backend="fiber")


class TestPoolDeath:
    def test_dead_pool_fails_typed_and_quarantines(self, registry, engine_a):
        """Killed workers surface WorkerCrashedError, then quarantine — no hang."""
        x = _requests(3, 6)
        rt = ServerRuntime(
            registry,
            ["tiny_a"],
            workers=1,
            max_queue=16,
            backend="process",
            pool_workers=1,
            policy=SupervisorPolicy(max_failures=1),
        ).start()
        try:
            assert rt.submit("tiny_a", x[0]).result(30) is not None

            # Kill the worker out from under the runtime (OOM-killer stand-in).
            with pytest.raises(WorkerCrashedError):
                rt._runner.submit(worker_mod.crash).result(30)
            assert rt._runner.broken

            with pytest.raises(WorkerCrashedError):
                rt.submit("tiny_a", x[1]).result(30)

            # max_failures=1: the actor quarantines rather than crash-looping.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if rt.health()["models"]["tiny_a"]["state"] == "quarantined":
                    break
                time.sleep(0.02)
            assert rt.health()["models"]["tiny_a"]["state"] == "quarantined"
            with pytest.raises(ModelQuarantinedError):
                rt.submit("tiny_a", x[2])
        finally:
            rt.stop(drain=False)
