"""ServerRuntime: admission control, drain/reject shutdown, concurrency.

The stress test at the bottom is the PR's concurrency gate: many client
threads interleaving requests to two hosted models must see no
cross-model bleed, every admitted future resolved bit-identically, and
rejection counts exactly matching the admission-control bound.
"""

import threading

import numpy as np
import pytest

from repro.serve import (
    QueueFullError,
    ServeError,
    ServerClosedError,
    ServerRuntime,
    UnknownModelError,
)


@pytest.fixture
def runtime(registry):
    """An unstarted two-model runtime (submissions queue deterministically)."""
    return ServerRuntime(registry, ["tiny_a", "tiny_b"], workers=2, max_batch=4, max_queue=8)


def _requests(n, features, seed=5):
    return np.random.default_rng(seed).normal(scale=0.5, size=(n, features)).astype(np.float32)


class TestValidation:
    def test_rejects_bad_pool_parameters(self, registry):
        with pytest.raises(ValueError, match="worker"):
            ServerRuntime(registry, ["tiny_a"], workers=0)
        with pytest.raises(ValueError, match="max_batch"):
            ServerRuntime(registry, ["tiny_a"], max_batch=0)
        with pytest.raises(ValueError, match="max_queue"):
            ServerRuntime(registry, ["tiny_a"], max_queue=0)
        with pytest.raises(ValueError, match="at least one model"):
            ServerRuntime(registry, [])
        with pytest.raises(ValueError, match="duplicate"):
            ServerRuntime(registry, ["tiny_a", "tiny_a"])

    def test_unknown_model_at_construction(self, registry):
        with pytest.raises(UnknownModelError):
            ServerRuntime(registry, ["tiny_a", "ghost"])

    def test_submit_validates_model_and_shape(self, runtime):
        with pytest.raises(UnknownModelError):
            runtime.submit("ghost", np.zeros(6, dtype=np.float32))
        with pytest.raises(ValueError, match="shape"):
            runtime.submit("tiny_a", np.zeros(5, dtype=np.float32))  # that's B's shape

    def test_models_listed_in_hosting_order(self, runtime):
        assert runtime.models() == ["tiny_a", "tiny_b"]


class TestAdmissionControl:
    def test_queue_bound_sheds_with_typed_error(self, runtime, engine_a):
        x = _requests(9, 6)
        for i in range(8):  # fill to the bound before any worker runs
            runtime.submit("tiny_a", x[i])
        assert runtime.queue_depth("tiny_a") == 8
        with pytest.raises(QueueFullError) as excinfo:
            runtime.submit("tiny_a", x[8])
        assert isinstance(excinfo.value, ServeError)
        assert excinfo.value.model == "tiny_a"
        assert excinfo.value.bound == 8
        metrics = runtime.metrics("tiny_a")
        assert metrics.rejected == 1 and metrics.submitted == 8
        # the other model's queue is unaffected by A's pressure
        runtime.submit("tiny_b", np.zeros(5, dtype=np.float32))
        runtime.stop(drain=True)

    def test_shed_request_future_never_created(self, runtime):
        x = _requests(8, 6)
        futures = [runtime.submit("tiny_a", x[i]) for i in range(8)]
        with pytest.raises(QueueFullError):
            runtime.submit("tiny_a", x[0])
        runtime.stop(drain=True)
        assert all(f.done() for f in futures)


class TestShutdown:
    def test_stop_drains_unstarted_runtime_inline(self, runtime, engine_a, engine_b):
        """Regression: queued work survives shutdown even without workers."""
        xa, xb = _requests(6, 6), _requests(5, 5)
        fa = [runtime.submit("tiny_a", s) for s in xa]
        fb = [runtime.submit("tiny_b", s) for s in xb]
        runtime.stop(drain=True)
        assert np.array_equal(np.stack([f.result(0) for f in fa]), engine_a.run(xa))
        assert np.array_equal(np.stack([f.result(0) for f in fb]), engine_b.run(xb))
        assert runtime.queue_depth("tiny_a") == 0 and runtime.queue_depth("tiny_b") == 0

    def test_stop_without_drain_rejects_pending_futures(self, runtime):
        futures = [runtime.submit("tiny_a", s) for s in _requests(5, 6)]
        runtime.stop(drain=False)
        for future in futures:
            with pytest.raises(ServerClosedError):
                future.result(0)
        metrics = runtime.metrics("tiny_a")
        assert metrics.rejected == 5 and metrics.completed == 0
        assert metrics.queue_depth == 0

    def test_submit_after_stop_raises(self, runtime):
        runtime.stop()
        with pytest.raises(ServerClosedError):
            runtime.submit("tiny_a", np.zeros(6, dtype=np.float32))

    def test_stop_is_idempotent_and_start_after_stop_fails(self, runtime):
        runtime.stop()
        runtime.stop()
        with pytest.raises(ServerClosedError):
            runtime.start()

    def test_context_manager_drains_on_clean_exit(self, registry, engine_a):
        x = _requests(10, 6)
        with ServerRuntime(registry, ["tiny_a"], workers=2, max_batch=4, max_queue=64) as rt:
            futures = [rt.submit("tiny_a", s) for s in x]
        got = np.stack([f.result(0) for f in futures])
        assert np.array_equal(got, engine_a.run(x))


class TestServing:
    def test_started_workers_serve_bit_identically(self, registry, engine_a, engine_b):
        xa, xb = _requests(23, 6, seed=7), _requests(19, 5, seed=8)
        rt = ServerRuntime(registry, ["tiny_a", "tiny_b"], workers=3, max_batch=4, max_queue=64)
        rt.start()
        rt.start()  # idempotent
        fa = [rt.submit("tiny_a", s) for s in xa]
        fb = [rt.submit("tiny_b", s) for s in xb]
        assert np.array_equal(np.stack([f.result(5) for f in fa]), engine_a.run(xa))
        assert np.array_equal(np.stack([f.result(5) for f in fb]), engine_b.run(xb))
        rt.stop()
        ma, mb = rt.metrics("tiny_a"), rt.metrics("tiny_b")
        assert ma.completed == 23 and mb.completed == 19
        assert ma.queue_depth == 0 and mb.queue_depth == 0

    def test_claims_never_exceed_max_batch(self, registry):
        runtime = ServerRuntime(registry, ["tiny_a"], workers=1, max_batch=4, max_queue=64)
        for s in _requests(11, 6):
            runtime.submit("tiny_a", s)
        runtime.stop(drain=True)
        metrics = runtime.metrics("tiny_a")
        assert metrics.completed == 11
        assert metrics.batches == 3  # 4 + 4 + 3 at max_batch=4


@pytest.mark.stress
class TestConcurrencyStress:
    CLIENTS = 8
    PER_CLIENT = 60
    MAX_QUEUE = 16

    def test_interleaved_multi_model_traffic(self, registry, engine_a, engine_b):
        """N client threads × 2 models: no bleed, no loss, sheds accounted."""
        runtime = ServerRuntime(
            registry,
            ["tiny_a", "tiny_b"],
            workers=4,
            max_batch=8,
            max_queue=self.MAX_QUEUE,
        ).start()
        engines = {"tiny_a": engine_a, "tiny_b": engine_b}
        features = {"tiny_a": 6, "tiny_b": 5}
        accepted = {"tiny_a": [], "tiny_b": []}  # (sample, future) pairs
        shed = {"tiny_a": 0, "tiny_b": 0}
        lock = threading.Lock()
        errors = []

        def client(cid):
            rng = np.random.default_rng(100 + cid)
            try:
                for i in range(self.PER_CLIENT):
                    model = ("tiny_a", "tiny_b")[(cid + i) % 2]
                    sample = rng.normal(scale=0.5, size=features[model]).astype(np.float32)
                    try:
                        future = runtime.submit(model, sample)
                    except QueueFullError:
                        with lock:
                            shed[model] += 1
                    else:
                        with lock:
                            accepted[model].append((sample, future))
            except Exception as e:  # pragma: no cover - failure reporting
                errors.append(e)

        threads = [threading.Thread(target=client, args=(c,)) for c in range(self.CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        runtime.stop(drain=True)
        assert not errors

        total = self.CLIENTS * self.PER_CLIENT
        assert sum(len(v) for v in accepted.values()) + sum(shed.values()) == total
        for model in ("tiny_a", "tiny_b"):
            engine = engines[model]
            # every admitted future resolved, bit-identical to a solo run
            # of its own sample — any cross-model (or cross-request) bleed
            # would break equality (the two models even disagree on dims)
            for sample, future in accepted[model]:
                assert future.done()
                assert np.array_equal(future.result(0), engine.run(sample[None])[0])
            metrics = runtime.metrics(model)
            assert metrics.completed == len(accepted[model])
            assert metrics.rejected == shed[model]
            assert metrics.submitted == len(accepted[model])
            assert metrics.queue_depth == 0
            assert 0 < metrics.mean_fill <= 8
