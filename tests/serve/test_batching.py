"""Micro-batch queue and predict_many: ordering, exactness, stats, shutdown."""

import numpy as np
import pytest

from repro.core import MFDFPNetwork
from repro.core.engine import BatchedEngine
from repro.nn.layers import Dense, ReLU
from repro.nn.network import Network
from repro.serve import (
    AdaptiveBatchPolicy,
    MicroBatchQueue,
    ServeStats,
    ServerClosedError,
    predict_many,
)


@pytest.fixture(scope="module")
def engine():
    rng = np.random.default_rng(21)
    net = Network(
        [Dense(6, 12, rng=rng, name="d1"), ReLU(name="r"), Dense(12, 3, rng=rng, name="d2")],
        input_shape=(6,),
        name="serve_mlp",
    )
    calib = rng.normal(scale=0.5, size=(64, 6)).astype(np.float32)
    mfdfp = MFDFPNetwork.from_float(net, calib)
    mfdfp.calibrate_bias_to_accumulator_grid()
    return BatchedEngine(mfdfp.deploy())


@pytest.fixture
def requests():
    return np.random.default_rng(22).normal(scale=0.5, size=(37, 6)).astype(np.float32)


class TestPredictMany:
    @pytest.mark.parametrize("max_batch", [1, 8, 16, 64])
    def test_matches_single_run(self, engine, requests, max_batch):
        assert np.array_equal(predict_many(engine, requests, max_batch), engine.run(requests))

    def test_stats_record_tail_batch(self, engine, requests):
        stats = ServeStats()
        predict_many(engine, requests, max_batch=16, stats=stats)
        assert list(stats.fills) == [16, 16, 5]
        assert stats.samples == 37
        assert stats.mean_fill == pytest.approx(37 / 3)

    def test_empty_input(self, engine):
        out = predict_many(engine, np.empty((0, 6), dtype=np.float32))
        assert out.shape == (0, 3)

    def test_rejects_bad_batch_size(self, engine, requests):
        with pytest.raises(ValueError, match="max_batch"):
            predict_many(engine, requests, max_batch=0)


class TestMicroBatchQueue:
    def test_results_match_direct_run_in_order(self, engine, requests):
        queue = MicroBatchQueue(engine, max_batch=8)
        tickets = [queue.submit(sample) for sample in requests]
        queue.flush()
        got = np.stack([queue.result(t) for t in tickets])
        assert np.array_equal(got, engine.run(requests))

    def test_auto_flush_at_max_batch(self, engine, requests):
        queue = MicroBatchQueue(engine, max_batch=4)
        for sample in requests[:4]:
            queue.submit(sample)
        assert len(queue) == 0  # flushed automatically
        assert list(queue.stats.fills) == [4]

    def test_result_flushes_pending(self, engine, requests):
        queue = MicroBatchQueue(engine, max_batch=100)
        ticket = queue.submit(requests[0])
        assert len(queue) == 1
        row = queue.result(ticket)
        assert np.array_equal(row, engine.run(requests[:1])[0])
        assert len(queue) == 0

    def test_out_of_order_consumption(self, engine, requests):
        queue = MicroBatchQueue(engine, max_batch=3)
        tickets = [queue.submit(sample) for sample in requests[:7]]
        direct = engine.run(requests[:7])
        for i in reversed(range(7)):
            assert np.array_equal(queue.result(tickets[i]), direct[i])

    def test_unknown_ticket_raises(self, engine, requests):
        queue = MicroBatchQueue(engine, max_batch=2)
        ticket = queue.submit(requests[0])
        queue.result(ticket)
        with pytest.raises(KeyError):
            queue.result(ticket)  # already consumed

    def test_unknown_ticket_does_not_flush_pending(self, engine, requests):
        queue = MicroBatchQueue(engine, max_batch=100)
        queue.submit(requests[0])
        with pytest.raises(KeyError):
            queue.result(999)
        assert len(queue) == 1  # pending request untouched

    def test_consumed_ticket_does_not_flush_pending(self, engine, requests):
        queue = MicroBatchQueue(engine, max_batch=100)
        first = queue.submit(requests[0])
        queue.result(first)
        queue.submit(requests[1])
        with pytest.raises(KeyError, match="consumed"):
            queue.result(first)
        assert len(queue) == 1  # error lookup left the batch intact

    def test_rejects_wrong_sample_shape(self, engine):
        queue = MicroBatchQueue(engine, max_batch=2)
        with pytest.raises(ValueError, match="one sample"):
            queue.submit(np.zeros((2, 6), dtype=np.float32))

    def test_rejects_bad_max_batch(self, engine):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatchQueue(engine, max_batch=0)

    def test_flush_empty_queue(self, engine):
        assert MicroBatchQueue(engine).flush() == 0


class TestQueueShutdown:
    """Regression: closing the queue must never silently drop in-flight work."""

    def test_close_drains_pending_requests(self, engine, requests):
        queue = MicroBatchQueue(engine, max_batch=100)
        tickets = [queue.submit(sample) for sample in requests[:5]]
        assert queue.close() == 5  # in-flight remainder executed, not dropped
        assert queue.closed and len(queue) == 0
        got = np.stack([queue.result(t) for t in tickets])
        assert np.array_equal(got, engine.run(requests[:5]))

    def test_close_without_drain_rejects_with_typed_error(self, engine, requests):
        queue = MicroBatchQueue(engine, max_batch=100)
        done = queue.submit(requests[0])
        result = queue.result(done)  # consumed before the shutdown
        pending = [queue.submit(sample) for sample in requests[1:4]]
        assert queue.close(drain=False) == 3
        for ticket in pending:
            with pytest.raises(ServerClosedError, match="rejected"):
                queue.result(ticket)
        assert np.array_equal(result, engine.run(requests[:1])[0])

    def test_results_executed_before_close_stay_collectable(self, engine, requests):
        queue = MicroBatchQueue(engine, max_batch=2)
        tickets = [queue.submit(sample) for sample in requests[:2]]  # auto-flushed
        queue.close(drain=False)
        got = np.stack([queue.result(t) for t in tickets])
        assert np.array_equal(got, engine.run(requests[:2]))

    def test_submit_after_close_raises(self, engine, requests):
        queue = MicroBatchQueue(engine)
        queue.close()
        with pytest.raises(ServerClosedError, match="closed"):
            queue.submit(requests[0])

    def test_close_is_idempotent(self, engine, requests):
        queue = MicroBatchQueue(engine, max_batch=100)
        queue.submit(requests[0])
        assert queue.close() == 1
        assert queue.close() == 0
        assert queue.close(drain=False) == 0

    def test_context_manager_drains_on_exit(self, engine, requests):
        with MicroBatchQueue(engine, max_batch=100) as queue:
            tickets = [queue.submit(sample) for sample in requests[:3]]
        assert queue.closed
        got = np.stack([queue.result(t) for t in tickets])
        assert np.array_equal(got, engine.run(requests[:3]))

    def test_context_manager_rejects_on_error_exit(self, engine, requests):
        with pytest.raises(RuntimeError, match="boom"):
            with MicroBatchQueue(engine, max_batch=100) as queue:
                ticket = queue.submit(requests[0])
                raise RuntimeError("boom")
        with pytest.raises(ServerClosedError):
            queue.result(ticket)

class TestAdaptiveBatchPolicy:
    def test_no_target_pins_at_max_batch(self):
        policy = AdaptiveBatchPolicy(min_batch=1, max_batch=16)
        assert policy.initial == 16
        for current, depth in [(16, 0), (4, 100), (1, 0)]:
            assert policy.next_size(current, depth) == 16
            assert policy.next_size(current, depth, p99_s=99.0) == 16

    def test_shrinks_when_p99_exceeds_target(self):
        policy = AdaptiveBatchPolicy(min_batch=1, max_batch=16, target_p99_s=0.5, step=2.0)
        assert policy.next_size(16, 1000, p99_s=0.6) == 8
        assert policy.next_size(8, 1000, p99_s=0.6) == 4
        assert policy.next_size(1, 1000, p99_s=0.6) == 1  # floor holds

    def test_grows_under_queue_pressure_when_slo_met(self):
        policy = AdaptiveBatchPolicy(
            min_batch=1, max_batch=16, target_p99_s=0.5, grow_pressure=2.0, step=2.0
        )
        assert policy.next_size(4, 8, p99_s=0.1) == 8
        assert policy.next_size(4, 7, p99_s=0.1) == 4  # below pressure: hold
        assert policy.next_size(16, 1000, p99_s=0.1) == 16  # ceiling holds
        assert policy.next_size(1, 2, p99_s=0.1) == 2  # grows by at least one

    def test_nan_p99_never_shrinks(self):
        policy = AdaptiveBatchPolicy(min_batch=1, max_batch=16, target_p99_s=0.5)
        assert policy.next_size(8, 0) == 8  # no latency data yet: hold

    def test_out_of_range_current_is_clamped(self):
        policy = AdaptiveBatchPolicy(min_batch=2, max_batch=8, target_p99_s=0.5)
        assert policy.next_size(100, 0, p99_s=0.1) == 8
        assert policy.next_size(0, 0, p99_s=0.1) == 2

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(min_batch=0), "min_batch"),
            (dict(min_batch=4, max_batch=2), "max_batch"),
            (dict(target_p99_s=0.0), "target_p99_s"),
            (dict(grow_pressure=0.0), "grow_pressure"),
            (dict(step=1.0), "step"),
            (dict(slo_window=0), "slo_window"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            AdaptiveBatchPolicy(**kwargs)
