"""Serve-suite fixtures: a deterministic fake clock and tiny models.

Everything the serving tests need to run fast (< 10 s for the whole
suite): millisecond-scale MLP artifacts instead of conv networks, a
manually-advanced clock so latency/throughput assertions are exact, and
a fresh registry per test with builder-call counting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import deploy_calibrated
from repro.core.engine import BatchedEngine
from repro.nn.layers import Dense, ReLU
from repro.nn.network import Network
from repro.serve import ModelRegistry


class FakeClock:
    """Deterministic seconds-valued clock: call it to read, advance it to tick."""

    def __init__(self, start: float = 1000.0):
        self._now = start

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        assert seconds >= 0, "a monotonic clock cannot go backwards"
        self._now += seconds


@pytest.fixture
def fake_clock():
    return FakeClock()


def tiny_deployed(seed: int, in_features: int, out_features: int, name: str):
    """A deployed MF-DFP MLP small enough to execute in microseconds."""
    rng = np.random.default_rng(seed)
    net = Network(
        [
            Dense(in_features, 12, rng=rng, name="d1"),
            ReLU(name="r"),
            Dense(12, out_features, rng=rng, name="d2"),
        ],
        input_shape=(in_features,),
        name=name,
    )
    calib = rng.normal(scale=0.5, size=(64, in_features)).astype(np.float32)
    return deploy_calibrated(net, calib)


@pytest.fixture(scope="session")
def make_tiny_deployed():
    """The tiny-model factory, for tests that need bespoke artifacts."""
    return tiny_deployed


@pytest.fixture(scope="session")
def deployed_a():
    """Tiny model A: 6 features in, 3 classes out."""
    return tiny_deployed(seed=21, in_features=6, out_features=3, name="tiny_a")


@pytest.fixture(scope="session")
def deployed_b():
    """Tiny model B: 5 features in, 4 classes out (distinguishable from A)."""
    return tiny_deployed(seed=33, in_features=5, out_features=4, name="tiny_b")


@pytest.fixture(scope="session")
def engine_a(deployed_a):
    """Reference engine for model A (compiled outside any cache under test)."""
    return BatchedEngine(deployed_a)


@pytest.fixture(scope="session")
def engine_b(deployed_b):
    return BatchedEngine(deployed_b)


@pytest.fixture
def build_counts():
    """Mutable builder-call counter: ``{model name: times built}``."""
    return {}


@pytest.fixture
def registry(deployed_a, deployed_b, build_counts):
    """Fresh registry hosting the tiny models, with counted builders."""

    def builder(name, artifact):
        def build():
            build_counts[name] = build_counts.get(name, 0) + 1
            return artifact

        return build

    reg = ModelRegistry()
    reg.register("tiny_a", builder("tiny_a", deployed_a))
    reg.register("tiny_b", builder("tiny_b", deployed_b))
    return reg
