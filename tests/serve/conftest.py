"""Serve-suite fixtures: fake clock, tiny models, fault injection, watchdog.

Everything the serving tests need to run fast (< 10 s for the whole
suite) and deterministically: millisecond-scale MLP artifacts instead of
conv networks, a manually-advanced clock so latency/throughput
assertions are exact, a fake backoff sleep that *advances* that clock
(so restart-with-backoff sequences replay without wall-clock waits or
``time.sleep`` races), the scheduled-crash doubles from
:mod:`repro.serve.faults`, a fresh registry per test with builder-call
counting, and a per-test ``faulthandler`` watchdog that dumps all stacks
and kills the run if any single test hangs — a deadlocked supervisor
fails loudly instead of wedging CI.
"""

from __future__ import annotations

import faulthandler
import os

import numpy as np
import pytest

from repro.core import deploy_calibrated
from repro.core.engine import BatchedEngine
from repro.nn.layers import Dense, ReLU
from repro.nn.network import Network
from repro.serve import CrashingEngine, FlakyBuilder, ModelRegistry

#: Hard per-test deadline for tests/serve — generous next to the <1 s a
#: healthy test takes, tiny next to a wedged condition-variable wait.
WATCHDOG_TIMEOUT_S = float(os.environ.get("REPRO_SERVE_TEST_TIMEOUT", "60"))


@pytest.fixture(autouse=True)
def serve_watchdog():
    """Per-test hang watchdog: dump every thread's stack, then exit hard.

    ``faulthandler.dump_traceback_later`` fires from a C thread, so it
    triggers even when all Python threads are deadlocked on locks —
    exactly the failure mode a broken supervisor produces.  Cancelled on
    the way out of every test, so the timer never outlives its test.
    """
    if WATCHDOG_TIMEOUT_S > 0:
        faulthandler.dump_traceback_later(WATCHDOG_TIMEOUT_S, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()


class FakeClock:
    """Deterministic seconds-valued clock: call it to read, advance it to tick."""

    def __init__(self, start: float = 1000.0):
        self._now = start

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        assert seconds >= 0, "a monotonic clock cannot go backwards"
        self._now += seconds

    def sleeper(self, log: list | None = None):
        """A ``sleep(seconds)`` that advances this clock instead of waiting.

        Passing it as the runtime's ``sleep`` makes backoff waits
        instantaneous *and* observable: each requested duration is
        appended to ``log`` (when given), so tests assert the exact
        capped-exponential sequence.
        """

        def sleep(seconds: float) -> None:
            assert seconds >= 0, "cannot sleep a negative duration"
            if log is not None:
                log.append(seconds)
            self.advance(seconds)

        return sleep


@pytest.fixture
def fake_clock():
    return FakeClock()


@pytest.fixture
def backoff_log():
    """Mutable list the fake sleeper appends each backoff duration to."""
    return []


@pytest.fixture
def fake_sleep(fake_clock, backoff_log):
    """A backoff sleep bound to ``fake_clock``, recording into ``backoff_log``."""
    return fake_clock.sleeper(backoff_log)


@pytest.fixture
def crashing_engine(engine_a):
    """Factory: a model-A engine double crashing on the given run() calls."""

    def make(crash_on=(), label="injected"):
        return CrashingEngine(engine_a, crash_on=crash_on, label=label)

    return make


@pytest.fixture
def flaky_builder(deployed_a):
    """Factory: a model-A builder double failing on the given build numbers."""

    def make(fail_on, label="flaky"):
        return FlakyBuilder(deployed_a, fail_on=fail_on, label=label)

    return make


def tiny_deployed(seed: int, in_features: int, out_features: int, name: str):
    """A deployed MF-DFP MLP small enough to execute in microseconds."""
    rng = np.random.default_rng(seed)
    net = Network(
        [
            Dense(in_features, 12, rng=rng, name="d1"),
            ReLU(name="r"),
            Dense(12, out_features, rng=rng, name="d2"),
        ],
        input_shape=(in_features,),
        name=name,
    )
    calib = rng.normal(scale=0.5, size=(64, in_features)).astype(np.float32)
    return deploy_calibrated(net, calib)


@pytest.fixture(scope="session")
def make_tiny_deployed():
    """The tiny-model factory, for tests that need bespoke artifacts."""
    return tiny_deployed


@pytest.fixture(scope="session")
def deployed_a():
    """Tiny model A: 6 features in, 3 classes out."""
    return tiny_deployed(seed=21, in_features=6, out_features=3, name="tiny_a")


@pytest.fixture(scope="session")
def deployed_b():
    """Tiny model B: 5 features in, 4 classes out (distinguishable from A)."""
    return tiny_deployed(seed=33, in_features=5, out_features=4, name="tiny_b")


@pytest.fixture(scope="session")
def engine_a(deployed_a):
    """Reference engine for model A (compiled outside any cache under test)."""
    return BatchedEngine(deployed_a)


@pytest.fixture(scope="session")
def engine_b(deployed_b):
    return BatchedEngine(deployed_b)


@pytest.fixture
def build_counts():
    """Mutable builder-call counter: ``{model name: times built}``."""
    return {}


@pytest.fixture
def registry(deployed_a, deployed_b, build_counts):
    """Fresh registry hosting the tiny models, with counted builders."""

    def builder(name, artifact):
        def build():
            build_counts[name] = build_counts.get(name, 0) + 1
            return artifact

        return build

    reg = ModelRegistry()
    reg.register("tiny_a", builder("tiny_a", deployed_a))
    reg.register("tiny_b", builder("tiny_b", deployed_b))
    return reg
