"""Injection-site registry: catalog, install discipline, inject fast path."""

import pytest

from repro.chaos import (
    ChaosError,
    FaultPlan,
    FaultRule,
    UnknownSiteError,
    active_plan,
    inject,
    installed,
    register_site,
    site_catalog,
)

# Importing the owning layers registers their sites, same as the CLI does.
import repro.io.store  # noqa: F401
import repro.parallel.arena  # noqa: F401
import repro.serve.faults  # noqa: F401


def latency_plan(site, trigger=None):
    return FaultPlan(
        rules=[
            FaultRule(
                site=site,
                fault="latency",
                trigger=trigger if trigger is not None else {"always": True},
                params={"seconds": 0.0},
            )
        ]
    )


class TestCatalog:
    def test_known_sites_are_registered(self):
        names = set(site_catalog())
        assert {
            "io.artifact.read",
            "io.artifact.write",
            "io.store.read",
            "parallel.arena.attach",
            "parallel.pool.submit",
            "serve.builder.build",
            "serve.engine.run",
        } <= names

    def test_catalog_entries_are_documented(self):
        for site in site_catalog().values():
            assert site.layer in {"io", "parallel", "serve", "test"}
            assert site.description

    def test_undotted_name_rejected(self):
        with pytest.raises(ChaosError, match="dotted"):
            register_site("flat", layer="test", description="x")

    def test_reregistration_is_idempotent(self):
        name = register_site("test.registry.site", layer="test", description="first")
        assert register_site(name, layer="test", description="revised") == name
        assert site_catalog()[name].description == "revised"

    def test_layer_conflict_rejected(self):
        register_site("test.registry.owned", layer="test", description="x")
        with pytest.raises(ChaosError, match="already registered"):
            register_site("test.registry.owned", layer="io", description="steal")


class TestInstalled:
    def test_inject_is_a_no_op_without_a_plan(self):
        assert active_plan() is None
        inject("io.artifact.read", path="anything")  # must not raise or count

    def test_install_activates_and_uninstalls(self):
        plan = latency_plan("io.artifact.read")
        with installed(plan) as active:
            assert active is plan
            assert active_plan() is plan
        assert active_plan() is None

    def test_uninstalls_on_error(self):
        plan = latency_plan("io.artifact.read")
        with pytest.raises(RuntimeError, match="boom"):
            with installed(plan):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_strict_rejects_unregistered_sites(self):
        plan = latency_plan("no.such.site")
        with pytest.raises(UnknownSiteError, match="no.such.site"):
            with installed(plan):
                pass  # pragma: no cover - install must fail first
        assert active_plan() is None

    def test_strict_false_allows_unregistered_sites(self):
        with installed(latency_plan("no.such.site"), strict=False):
            pass

    def test_nested_installs_rejected(self):
        outer = latency_plan("io.artifact.read")
        with installed(outer):
            with pytest.raises(ChaosError, match="do not nest"):
                with installed(latency_plan("io.artifact.write")):
                    pass  # pragma: no cover
            assert active_plan() is outer  # failed nest must not evict the outer plan
        assert active_plan() is None

    def test_only_targeted_sites_are_counted(self):
        plan = latency_plan("io.artifact.read", trigger={})
        with installed(plan):
            inject("io.artifact.read", path="a")
            inject("io.artifact.write", path="b")  # untargeted: not even counted
        assert plan.calls("io.artifact.read") == 1
        assert plan.calls("io.artifact.write") == 0

    def test_context_kwargs_reach_the_fault(self):
        sleeps = []
        plan = FaultPlan(
            rules=[
                FaultRule(
                    site="io.artifact.read",
                    fault="latency",
                    trigger={"always": True},
                    params={"seconds": 0.25},
                )
            ]
        )
        with installed(plan):
            inject("io.artifact.read", path="a", sleep=sleeps.append)
        assert sleeps == [0.25]
        assert plan.fired == [("io.artifact.read", 1, "latency")]
