"""FaultPlan/FaultRule: validation, trigger grammar, JSON round-trip, counting."""

import json
import threading

import pytest

from repro.chaos import FaultPlan, FaultPlanError, FaultRule


def rule(site="io.artifact.read", fault="truncate", trigger=None, params=None):
    return FaultRule(
        site=site,
        fault=fault,
        trigger=trigger if trigger is not None else {"always": True},
        params=params or {},
    )


class TestRuleValidation:
    def test_empty_site_rejected(self):
        with pytest.raises(FaultPlanError, match="site"):
            rule(site="")

    def test_non_string_fault_rejected(self):
        with pytest.raises(FaultPlanError, match="fault"):
            rule(fault=None)

    def test_non_dict_trigger_rejected(self):
        with pytest.raises(FaultPlanError, match="trigger"):
            rule(trigger=[1])

    def test_unknown_trigger_key_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown trigger key"):
            rule(trigger={"on_call": 3})

    def test_unknown_fault_name_rejected_at_plan_construction(self):
        # The rule itself is syntactically fine; the *plan* owns the
        # fault catalog check so a typo fails before any drill runs.
        with pytest.raises(FaultPlanError, match="unknown fault 'explode'"):
            FaultPlan(rules=[rule(fault="explode")])

    def test_non_rule_entries_rejected(self):
        with pytest.raises(FaultPlanError, match="FaultRule"):
            FaultPlan(rules=[{"site": "a.b", "fault": "truncate", "trigger": {}}])

    def test_rule_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultPlanError, match="unknown rule field"):
            FaultRule.from_dict({"site": "a.b", "fault": "truncate", "when": {}})

    def test_rule_from_dict_rejects_missing_fields(self):
        with pytest.raises(FaultPlanError, match="missing required field"):
            FaultRule.from_dict({"site": "a.b"})


class TestTriggerGrammar:
    def test_empty_trigger_never_fires(self):
        r = rule(trigger={})
        assert not any(r.matches(call, {}) for call in range(1, 10))

    def test_call_is_one_based(self):
        r = rule(trigger={"call": 3})
        assert [c for c in range(1, 6) if r.matches(c, {})] == [3]

    def test_calls_set(self):
        r = rule(trigger={"calls": [2, 5]})
        assert [c for c in range(1, 7) if r.matches(c, {})] == [2, 5]

    def test_always(self):
        r = rule(trigger={"always": True})
        assert all(r.matches(c, {}) for c in range(1, 5))
        assert not rule(trigger={"always": False}).matches(1, {})

    def test_suffix_matches_context_path(self):
        r = rule(trigger={"suffix": "v0002.npz"})
        assert r.matches(1, {"path": "/store/models/m/v0002.npz"})
        assert not r.matches(1, {"path": "/store/models/m/v0003.npz"})
        assert not r.matches(1, {})  # no path in context -> no match

    def test_match_compares_as_strings(self):
        r = rule(trigger={"match": {"name": "m", "version": 2}})
        assert r.matches(1, {"name": "m", "version": 2})
        assert r.matches(1, {"name": "m", "version": "2"})  # JSON round-trip safe
        assert not r.matches(1, {"name": "other", "version": 2})

    def test_keys_combine_conjunctively(self):
        r = rule(trigger={"call": 2, "suffix": "a.npz"})
        assert not r.matches(1, {"path": "a.npz"})
        assert not r.matches(2, {"path": "b.npz"})
        assert r.matches(2, {"path": "a.npz"})


class TestSerialization:
    def plan(self):
        return FaultPlan(
            seed=42,
            rules=[
                rule(trigger={"call": 3}, params={"fraction": 0.4}),
                rule(site="parallel.pool.submit", fault="sigkill-worker", trigger={"calls": [2]}),
            ],
            name="roundtrip",
        )

    def test_json_round_trip(self):
        plan = self.plan()
        again = FaultPlan.from_json(plan.to_json())
        assert again.to_dict() == plan.to_dict()
        assert again.seed == 42 and again.name == "roundtrip"
        assert again.sites() == plan.sites()

    def test_to_json_is_valid_sorted_json(self):
        doc = json.loads(self.plan().to_json())
        assert doc["seed"] == 42
        assert [r["site"] for r in doc["rules"]] == [
            "io.artifact.read",
            "parallel.pool.submit",
        ]

    def test_from_json_rejects_garbage(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_from_dict_rejects_unknown_plan_fields(self):
        with pytest.raises(FaultPlanError, match="unknown plan field"):
            FaultPlan.from_dict({"seed": 1, "extras": []})

    def test_describe_names_every_rule(self):
        text = self.plan().describe()
        assert "roundtrip" in text and "seed=42" in text
        assert "io.artifact.read: truncate" in text
        assert "parallel.pool.submit: sigkill-worker" in text


class TestFiring:
    def test_counts_are_per_site(self):
        plan = FaultPlan(rules=[rule(trigger={})])
        plan.fire("io.artifact.read", {})
        plan.fire("io.artifact.read", {})
        plan.fire("io.artifact.write", {})
        assert plan.calls("io.artifact.read") == 2
        assert plan.calls("io.artifact.write") == 1
        assert plan.calls("never.fired") == 0

    def test_fired_log_records_site_call_and_fault(self, tmp_path):
        victim = tmp_path / "f.bin"
        victim.write_bytes(b"x" * 100)
        plan = FaultPlan(
            rules=[rule(fault="truncate", trigger={"call": 2}, params={"fraction": 0.5})]
        )
        plan.fire("io.artifact.read", {"path": victim})
        assert plan.fired == []
        plan.fire("io.artifact.read", {"path": victim})
        assert plan.fired == [("io.artifact.read", 2, "truncate")]
        assert victim.stat().st_size == 50

    def test_counting_is_thread_safe(self):
        plan = FaultPlan(rules=[rule(trigger={})])
        n_threads, per_thread = 8, 200

        def hammer():
            for _ in range(per_thread):
                plan.fire("io.artifact.read", {})

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert plan.calls("io.artifact.read") == n_threads * per_thread

    def test_seeded_rng_replays_identical_corruption(self, tmp_path):
        blobs = []
        for run in range(2):
            victim = tmp_path / f"run{run}.bin"
            victim.write_bytes(bytes(range(256)) * 8)
            plan = FaultPlan(
                seed=9,
                rules=[rule(fault="bitflip", trigger={"always": True}, params={"flips": 4})],
            )
            plan.fire("io.artifact.read", {"path": victim})
            blobs.append(victim.read_bytes())
        assert blobs[0] == blobs[1]
