"""Drill harness: report shape, determinism, and the cheap drills in-process.

The full four-drill sweep (including the process-pool and SIGKILL
drills) runs in ``benchmarks/bench_chaos_recovery.py`` and the CI chaos
smoke step; here the fast drills prove the harness end-to-end at
unit-test speed.
"""

import json

import pytest

from repro.chaos import DRILLS, DrillError, FaultPlan, Watchdog, run_drill
from repro.chaos.errors import DrillTimeoutError


class TestHarness:
    def test_catalog_names_all_four_drills(self):
        assert list(DRILLS) == [
            "torn-checkpoint-resume",
            "corrupted-store-cold-start",
            "worker-death-campaign",
            "kill-and-resume-under-load",
        ]

    def test_unknown_drill_is_typed(self):
        with pytest.raises(DrillError, match="unknown drill"):
            run_drill("explode-everything")

    def test_watchdog_turns_hangs_into_typed_timeouts(self):
        import time

        with pytest.raises(DrillTimeoutError, match="hang"):
            with Watchdog(0.05, label="hang"):
                time.sleep(5.0)

    def test_watchdog_noop_on_fast_block(self):
        with Watchdog(30.0, label="fast"):
            pass


class TestCheapDrills:
    @pytest.mark.parametrize("name", ["torn-checkpoint-resume", "corrupted-store-cold-start"])
    def test_quick_drill_passes_and_reports(self, name, tmp_path):
        report = run_drill(name, seed=3, quick=True, workdir=tmp_path, log=lambda msg: None)
        assert report.passed and report.name == name and report.seed == 3 and report.quick
        assert report.duration_s >= 0
        # Every invariant the drill asserts is echoed with its verdict.
        assert report.invariants and all(report.invariants.values())
        # The plan round-trips: a failure log alone reproduces the run.
        again = FaultPlan.from_json(json.dumps(report.plan))
        assert again.to_dict() == report.plan
        assert report.fired, "the drill's fault plan never fired"
        doc = report.to_dict()
        assert doc["name"] == name and doc["plan"] == report.plan

    def test_drill_is_deterministic_per_seed(self, tmp_path):
        reports = [
            run_drill(
                "torn-checkpoint-resume",
                seed=11,
                quick=True,
                workdir=tmp_path / f"run{i}",
                log=lambda msg: None,
            )
            for i in range(2)
        ]
        assert reports[0].plan == reports[1].plan
        assert reports[0].fired == reports[1].fired
        assert reports[0].details == reports[1].details
