"""Injected faults through the real io/parallel seams, and the retry policy.

Each test installs a :class:`~repro.chaos.FaultPlan` and drives the
*production* code path — the point is that the owning layer surfaces
injected damage through its typed hierarchy (quarantine + fallback,
``ArenaSegmentLostError``) exactly as it would a real failure.
"""

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.chaos import FaultPlan, FaultRule, installed
from repro.core.engine import engine_fingerprint
from repro.core.mfdfp import MFDFPNetwork
from repro.io import (
    ArtifactError,
    ArtifactStore,
    QuarantinedArtifactError,
    TransientStoreError,
    load_deployed,
    save_deployed,
)
from repro.parallel import SharedWeightArena, attach_planes
from repro.parallel.arena import ArenaSegmentLostError
from repro.retry import RetryPolicy
from repro.serve.supervisor import SupervisorPolicy
from repro.zoo import cifar10_small


def tiny_deployed(seed=0):
    from repro.core.mfdfp import deploy_calibrated

    net = cifar10_small(size=8, width=4, rng=np.random.default_rng(seed), dtype=np.float64)
    calib = np.random.default_rng(100 + seed).normal(size=(16, 3, 8, 8))
    return deploy_calibrated(net, calib)


def plan_of(*rules, seed=0):
    return FaultPlan(seed=seed, rules=rules, name="test")


def no_sleep(seconds):
    raise AssertionError(f"unexpected real sleep({seconds})")


class TestArtifactWriteFaults:
    def test_torn_write_leaves_unreadable_file_and_typed_load_error(self, tmp_path):
        deployed = tiny_deployed(0)
        path = tmp_path / "d.npz"
        plan = plan_of(
            FaultRule(
                site="io.artifact.write",
                fault="torn-write",
                trigger={"suffix": "d.npz"},
                params={"fraction": 0.4},
            )
        )
        with installed(plan):
            save_deployed(deployed, path)
        assert plan.fired == [("io.artifact.write", 1, "torn-write")]
        intact = tmp_path / "intact.npz"
        save_deployed(deployed, intact)
        assert path.stat().st_size < intact.stat().st_size
        with pytest.raises(ArtifactError):
            load_deployed(path)

    def test_untargeted_writes_are_untouched(self, tmp_path):
        deployed = tiny_deployed(0)
        plan = plan_of(
            FaultRule(
                site="io.artifact.write",
                fault="torn-write",
                trigger={"suffix": "other.npz"},
            )
        )
        with installed(plan):
            save_deployed(deployed, tmp_path / "d.npz")
        assert plan.fired == []
        loaded = load_deployed(tmp_path / "d.npz")
        assert engine_fingerprint(loaded) == engine_fingerprint(deployed)


class TestStoreReadFaults:
    def test_bitflip_on_newest_quarantines_and_falls_back(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", sleep=no_sleep)
        store.publish_deployed("m", tiny_deployed(0))
        store.publish_deployed("m", tiny_deployed(1))
        plan = plan_of(
            FaultRule(
                site="io.store.read",
                fault="bitflip",
                trigger={"suffix": "v0002.npz"},
                params={"flips": 64},  # enough damage that verification must trip
            )
        )
        with installed(plan):
            version, loaded = store.load_newest_verified("m")
        assert version == 1
        assert engine_fingerprint(loaded) == engine_fingerprint(tiny_deployed(0))
        assert store.quarantined_versions("m") == [2]
        assert store.versions("m") == [1]

    def test_transient_read_is_retried_with_accounting(self, tmp_path):
        sleeps = []
        store = ArtifactStore(tmp_path / "store", sleep=sleeps.append)
        store.publish_deployed("m", tiny_deployed(0))
        plan = plan_of(
            FaultRule(
                site="io.store.read",
                fault="raise",
                trigger={"call": 1},
                params={"error": "transient-store"},
            )
        )
        with installed(plan):
            loaded = store.load_deployed("m")
        assert engine_fingerprint(loaded) == engine_fingerprint(tiny_deployed(0))
        assert store.retried_reads == 1
        assert sleeps == [store.retry.backoff_s(1)]
        assert store.quarantined_versions("m") == []  # healthy file stayed in place

    def test_persistent_transient_failure_stays_typed(self, tmp_path):
        sleeps = []
        store = ArtifactStore(
            tmp_path / "store",
            retry=RetryPolicy(attempts=3, backoff_initial_s=0.01, backoff_cap_s=0.25),
            sleep=sleeps.append,
        )
        store.publish_deployed("m", tiny_deployed(0))
        plan = plan_of(
            FaultRule(
                site="io.store.read",
                fault="raise",
                trigger={"always": True},
                params={"error": "transient-store", "message": "nfs blip at {site}"},
            )
        )
        with installed(plan):
            with pytest.raises(QuarantinedArtifactError):
                store.load_deployed("m", version=1)
        assert len(sleeps) == 2  # attempts=3 -> two backoffs before giving up
        assert store.retried_reads == 2

    def test_injected_corruption_error_is_classified(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", sleep=no_sleep)
        store.publish_deployed("m", tiny_deployed(0))
        plan = plan_of(
            FaultRule(
                site="io.store.read",
                fault="raise",
                trigger={"call": 1},
                params={"error": "artifact-corrupt"},
            )
        )
        with installed(plan):
            with pytest.raises(QuarantinedArtifactError) as excinfo:
                store.load_deployed("m", version=1)
        assert excinfo.value.version == 1
        assert "injected artifact-corrupt" in excinfo.value.reason


class TestArenaFaults:
    def test_stolen_segment_surfaces_as_typed_loss(self):
        rng = np.random.default_rng(3)
        net = cifar10_small(size=8, rng=rng)
        calib = rng.normal(scale=0.8, size=(8, 3, 8, 8)).astype(np.float32)
        mf = MFDFPNetwork.from_float(net, calib)
        deployed = mf.deploy()
        plan = plan_of(
            FaultRule(site="parallel.arena.attach", fault="unlink-segment", trigger={"call": 1})
        )
        with SharedWeightArena(prefix=f"repro-chaos-{os.getpid()}") as arena:
            spec = arena.publish(deployed)
            with installed(plan):
                with pytest.raises(ArenaSegmentLostError, match="republish"):
                    attach_planes(spec)
            # Recreate the stolen name so the arena's own close() has a
            # segment to unlink — keeps this process's resource tracker
            # balanced (the steal already consumed the original entry).
            shared_memory.SharedMemory(name=spec.segment, create=True, size=16).close()
        assert plan.fired == [("parallel.arena.attach", 1, "unlink-segment")]


class TestRetryPolicy:
    def test_backoff_schedule_is_capped_geometric(self):
        policy = RetryPolicy(
            attempts=6, backoff_initial_s=0.1, backoff_factor=2.0, backoff_cap_s=0.5
        )
        assert [policy.backoff_s(k) for k in range(1, 6)] == [0.1, 0.2, 0.4, 0.5, 0.5]
        with pytest.raises(ValueError, match="at least one failure"):
            policy.backoff_s(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"backoff_initial_s": 0.0},
            {"backoff_factor": 0.5},
            {"backoff_initial_s": 1.0, "backoff_cap_s": 0.1},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_success_on_first_try_never_sleeps(self):
        policy = RetryPolicy(attempts=3)
        assert policy.call(lambda: "ok", sleep=no_sleep) == "ok"

    def test_retries_then_succeeds_with_hook(self):
        policy = RetryPolicy(attempts=3, backoff_initial_s=0.01, backoff_cap_s=0.25)
        failures = iter([TransientStoreError("one"), TransientStoreError("two")])
        sleeps, retries = [], []

        def flaky():
            try:
                raise next(failures)
            except StopIteration:
                return "healed"

        result = policy.call(
            flaky,
            retry_on=(TransientStoreError,),
            sleep=sleeps.append,
            on_retry=lambda k, exc: retries.append((k, str(exc))),
        )
        assert result == "healed"
        assert retries == [(1, "one"), (2, "two")]
        assert sleeps == [policy.backoff_s(1), policy.backoff_s(2)]

    def test_final_failure_propagates(self):
        policy = RetryPolicy(attempts=2, backoff_initial_s=0.01, backoff_cap_s=0.25)
        with pytest.raises(TransientStoreError, match="still down"):
            policy.call(
                lambda: (_ for _ in ()).throw(TransientStoreError("still down")),
                retry_on=(TransientStoreError,),
                sleep=lambda s: None,
            )

    def test_unmatched_errors_propagate_immediately(self):
        calls = []

        def wrong_kind():
            calls.append(1)
            raise KeyError("not transient")

        policy = RetryPolicy(attempts=5, backoff_initial_s=0.01, backoff_cap_s=0.25)
        with pytest.raises(KeyError):
            policy.call(wrong_kind, retry_on=(TransientStoreError,), sleep=no_sleep)
        assert calls == [1]

    def test_supervisor_policy_derives_the_same_schedule(self):
        sup = SupervisorPolicy(
            max_failures=4, backoff_initial_s=0.2, backoff_factor=3.0, backoff_cap_s=1.0
        )
        derived = sup.retry_policy()
        assert derived == RetryPolicy(
            attempts=4, backoff_initial_s=0.2, backoff_factor=3.0, backoff_cap_s=1.0
        )
        for k in range(1, 5):
            assert sup.backoff_s(k) == derived.backoff_s(k)
