"""Synthetic class-conditional image generator."""

import numpy as np

from repro.datasets.synthetic import (
    SyntheticImageConfig,
    SyntheticImageGenerator,
    make_classification_images,
)


class TestGenerator:
    def test_shapes(self):
        gen = SyntheticImageGenerator(SyntheticImageConfig(num_classes=4, height=16, width=16))
        ds = gen.dataset(50)
        assert ds.x.shape == (50, 3, 16, 16)
        assert ds.y.shape == (50,)

    def test_labels_in_range(self):
        gen = SyntheticImageGenerator(SyntheticImageConfig(num_classes=7))
        ds = gen.dataset(200)
        assert ds.y.min() >= 0
        assert ds.y.max() < 7

    def test_deterministic_given_seed(self):
        a = SyntheticImageGenerator(seed=42).dataset(20)
        b = SyntheticImageGenerator(seed=42).dataset(20)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = SyntheticImageGenerator(seed=1).dataset(20)
        b = SyntheticImageGenerator(seed=2).dataset(20)
        assert not np.array_equal(a.x, b.x)

    def test_streams_are_disjoint_draws(self):
        gen = SyntheticImageGenerator(seed=0)
        train = gen.dataset(30, stream=0)
        test = gen.dataset(30, stream=1)
        assert not np.array_equal(train.x, test.x)

    def test_same_stream_reproducible(self):
        gen = SyntheticImageGenerator(seed=0)
        a = gen.dataset(15, stream=0)
        b = gen.dataset(15, stream=0)
        assert np.array_equal(a.x, b.x)

    def test_values_bounded(self):
        ds = SyntheticImageGenerator(seed=3).dataset(100)
        assert np.abs(ds.x).max() <= 2.0

    def test_dtype(self):
        ds = SyntheticImageGenerator().dataset(5)
        assert ds.x.dtype == np.float32
        assert ds.y.dtype == np.int64

    def test_classes_are_distinguishable(self):
        """Nearest-prototype classification on clean prototypes should beat
        chance by a wide margin — the task must be learnable."""
        config = SyntheticImageConfig(num_classes=5, noise=0.2, max_shift=0, jitter=0.0)
        gen = SyntheticImageGenerator(config, seed=0)
        ds = gen.dataset(200)
        protos = gen.prototypes.mean(axis=1).reshape(5, -1)  # class means
        flat = ds.x.reshape(len(ds), -1)
        dists = ((flat[:, None, :] - protos[None]) ** 2).sum(-1)
        acc = (dists.argmin(1) == ds.y).mean()
        assert acc > 0.6  # chance would be 0.2

    def test_sample_shape_property(self):
        gen = SyntheticImageGenerator(SyntheticImageConfig(channels=1, height=8, width=12))
        assert gen.sample_shape == (1, 8, 12)


class TestConvenienceWrapper:
    def test_make_classification_images(self):
        train, test = make_classification_images(40, 10, num_classes=3, size=8)
        assert len(train) == 40
        assert len(test) == 10
        assert train.x.shape[1:] == (3, 8, 8)

    def test_train_test_from_same_prototypes(self):
        """Train and test must represent the same task (shared classes)."""
        train, test = make_classification_images(100, 100, num_classes=2, size=8, seed=9)
        # class-conditional means should correlate across the splits
        m_train = np.stack([train.x[train.y == c].mean(0) for c in range(2)])
        m_test = np.stack([test.x[test.y == c].mean(0) for c in range(2)])
        same = np.corrcoef(m_train[0].ravel(), m_test[0].ravel())[0, 1]
        cross = np.corrcoef(m_train[0].ravel(), m_test[1].ravel())[0, 1]
        assert same > cross
