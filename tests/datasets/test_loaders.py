"""CIFAR-10 / ImageNet providers: surrogates and the real-file loader."""

import numpy as np
import pytest

from repro.datasets.cifar10 import (
    CIFAR10_SHAPE,
    cifar10_surrogate,
    load_real_cifar10,
)
from repro.datasets.imagenet import IMAGENET_SHAPE, imagenet_surrogate


class TestCifar10Surrogate:
    def test_default_shapes(self):
        train, test = cifar10_surrogate(n_train=30, n_test=10)
        assert train.x.shape[1:] == CIFAR10_SHAPE
        assert len(train) == 30 and len(test) == 10

    def test_ten_classes(self):
        train, _ = cifar10_surrogate(n_train=500, n_test=10)
        assert set(np.unique(train.y)) == set(range(10))

    def test_reduced_size(self):
        train, _ = cifar10_surrogate(n_train=10, n_test=5, size=16)
        assert train.x.shape[1:] == (3, 16, 16)

    def test_deterministic(self):
        a, _ = cifar10_surrogate(n_train=20, n_test=5, seed=1)
        b, _ = cifar10_surrogate(n_train=20, n_test=5, seed=1)
        assert np.array_equal(a.x, b.x)


class TestImagenetSurrogate:
    def test_constants_match_paper_setup(self):
        assert IMAGENET_SHAPE == (3, 227, 227)

    def test_default_shapes(self):
        train, test = imagenet_surrogate(n_train=40, n_test=10)
        assert train.x.shape == (40, 3, 32, 32)
        assert len(test) == 10

    def test_class_count_configurable(self):
        train, _ = imagenet_surrogate(n_train=400, n_test=10, num_classes=30)
        assert train.y.max() < 30
        assert len(np.unique(train.y)) > 20


class TestRealCifar10Loader:
    def _write_fake_batches(self, root, n_per_batch=4):
        """Write syntactically valid CIFAR-10 binary batches."""
        rng = np.random.default_rng(0)
        for name in [f"data_batch_{i}.bin" for i in range(1, 6)] + ["test_batch.bin"]:
            records = []
            for r in range(n_per_batch):
                label = np.array([r % 10], dtype=np.uint8)
                pixels = rng.integers(0, 256, size=3072, dtype=np.uint8)
                records.append(np.concatenate([label, pixels]))
            np.concatenate(records).tofile(root / name)

    def test_missing_files_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_real_cifar10(tmp_path)

    def test_parses_binary_format(self, tmp_path):
        self._write_fake_batches(tmp_path)
        train, test = load_real_cifar10(tmp_path)
        assert train.x.shape == (20, 3, 32, 32)  # 5 batches x 4 records
        assert test.x.shape == (4, 3, 32, 32)
        assert train.y.tolist() == [0, 1, 2, 3] * 5

    def test_normalization_zero_mean(self, tmp_path):
        self._write_fake_batches(tmp_path, n_per_batch=8)
        train, _ = load_real_cifar10(tmp_path)
        assert abs(train.x.mean()) < 1e-6
        assert train.x.dtype == np.float32

    def test_corrupt_file_rejected(self, tmp_path):
        self._write_fake_batches(tmp_path)
        with open(tmp_path / "data_batch_1.bin", "ab") as f:
            f.write(b"\x00" * 7)  # no longer a multiple of the record size
        with pytest.raises(ValueError):
            load_real_cifar10(tmp_path)
