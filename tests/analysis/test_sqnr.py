"""SQNR analysis and exponent histograms."""

import numpy as np
import pytest

from repro.analysis.sqnr import (
    exponent_histogram,
    layer_sqnr_report,
    quantization_noise_of,
    sqnr_db,
)
from repro.core.mfdfp import MFDFPNetwork
from repro.zoo import cifar10_small


class TestSqnrDb:
    def test_exact_match_is_infinite(self, rng):
        x = rng.normal(size=100)
        assert sqnr_db(x, x.copy()) == float("inf")

    def test_known_value(self):
        signal = np.array([1.0, 1.0])
        noisy = np.array([1.1, 1.0])  # noise power 0.01, signal power 2
        assert sqnr_db(signal, noisy) == pytest.approx(10 * np.log10(200))

    def test_zero_signal_nonzero_noise(self):
        assert sqnr_db(np.zeros(4), np.ones(4)) == float("-inf")

    def test_monotone_in_noise(self, rng):
        x = rng.normal(size=200)
        small = x + rng.normal(scale=0.01, size=200)
        large = x + rng.normal(scale=0.1, size=200)
        assert sqnr_db(x, small) > sqnr_db(x, large)

    def test_finer_quantization_higher_sqnr(self, rng):
        from repro.core.dfp import DFPFormat, dfp_quantize

        x = rng.uniform(-1, 1, size=500)
        coarse = dfp_quantize(x, DFPFormat(8, 4))
        fine = dfp_quantize(x, DFPFormat(8, 6))
        assert sqnr_db(x, fine) > sqnr_db(x, coarse)


class TestLayerReport:
    @pytest.fixture
    def nets(self, rng):
        net = cifar10_small(size=16, dtype=np.float64)
        float_net = net.clone()
        MFDFPNetwork.from_float(net, rng.normal(size=(16, 3, 16, 16)))
        return float_net, net

    def test_one_report_per_layer(self, nets, rng):
        float_net, quant_net = nets
        reports = layer_sqnr_report(float_net, quant_net, rng.normal(size=(4, 3, 16, 16)))
        assert len(reports) == len(float_net.layers)
        assert [r.layer_name for r in reports] == [l.name for l in float_net.layers]

    def test_sqnr_finite_and_positive(self, nets, rng):
        float_net, quant_net = nets
        reports = layer_sqnr_report(float_net, quant_net, rng.normal(size=(4, 3, 16, 16)))
        for r in reports:
            assert np.isfinite(r.sqnr_db)
            assert r.sqnr_db > 0  # 8-bit quantization is far above 0 dB

    def test_max_error_below_signal_range(self, nets, rng):
        float_net, quant_net = nets
        reports = layer_sqnr_report(float_net, quant_net, rng.normal(size=(4, 3, 16, 16)))
        for r in reports:
            assert r.max_abs_error < r.signal_range

    def test_mismatched_networks_rejected(self, nets, rng):
        float_net, quant_net = nets
        from repro.nn import Network, ReLU

        with pytest.raises(ValueError):
            layer_sqnr_report(float_net, Network([ReLU()]), rng.normal(size=(1, 3, 16, 16)))

    def test_one_call_helper(self, rng):
        net = cifar10_small(size=16, dtype=np.float64)
        reports = quantization_noise_of(
            net, rng.normal(size=(8, 3, 16, 16)), rng.normal(size=(4, 3, 16, 16))
        )
        assert len(reports) == len(net.layers)


class TestExponentHistogram:
    def test_counts_sum_to_weight_count(self):
        net = cifar10_small(size=16)
        hists = exponent_histogram(net)
        for layer in net.compute_layers():
            assert hists[layer.name].sum() == layer.params[0].size

    def test_bins_cover_exponent_range(self):
        net = cifar10_small(size=16)
        hists = exponent_histogram(net, min_exp=-7, max_exp=0)
        assert all(len(h) == 8 for h in hists.values())

    def test_known_weights(self, rng):
        from repro.nn import Dense, Network

        net = Network([Dense(4, 2, dtype=np.float64, name="fc")], input_shape=(4,))
        net.layer("fc").weight.data = np.array(
            [[1.0, 0.5, 0.5, 0.25], [0.25, 0.25, 1.0, 1.0]]
        )
        hist = exponent_histogram(net)["fc"]
        # index 7 = e=0, index 6 = e=-1, index 5 = e=-2
        assert hist[7] == 3
        assert hist[6] == 2
        assert hist[5] == 3

    def test_only_parameterized_layers(self):
        net = cifar10_small(size=16)
        hists = exponent_histogram(net)
        assert set(hists) == {l.name for l in net.compute_layers()}
