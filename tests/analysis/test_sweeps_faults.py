"""Parameter sweeps and fault injection."""

import numpy as np
import pytest

from repro.analysis.faults import accuracy_under_faults, inject_weight_faults
from repro.analysis.sweeps import (
    bitwidth_sweep,
    dynamic_vs_static,
    exponent_clamp_sweep,
    stochastic_vs_deterministic,
)
from repro.core.mfdfp import MFDFPNetwork
from repro.hw.accelerator import execute_deployed


@pytest.fixture(scope="module")
def sweep_problem(trained_small_net, small_data):
    train, test = small_data
    return trained_small_net, train.x[:128], test


class TestSweeps:
    def test_bitwidth_sweep_structure(self, sweep_problem):
        net, calib, test = sweep_problem
        points = bitwidth_sweep(net, calib, test, bit_widths=(4, 8, 16))
        assert [p.bits for p in points] == [4, 8, 16]
        assert all(0.0 <= p.error_rate <= 1.0 for p in points)

    def test_16bit_not_worse_than_4bit(self, sweep_problem):
        net, calib, test = sweep_problem
        points = {p.bits: p.error_rate for p in bitwidth_sweep(net, calib, test, (4, 16))}
        assert points[16] <= points[4]

    def test_exponent_clamp_sweep(self, sweep_problem):
        net, calib, test = sweep_problem
        points = exponent_clamp_sweep(net, calib, test, min_exps=(-3, -7, -15))
        assert [p.min_exp for p in points] == [-3, -7, -15]
        by_exp = {p.min_exp: p.error_rate for p in points}
        # a very tight clamp (-3) cannot beat the wide one by much
        assert by_exp[-15] <= by_exp[-3] + 0.05

    def test_dynamic_vs_static(self, sweep_problem):
        net, calib, test = sweep_problem
        points = dynamic_vs_static(net, calib, test)
        labels = {p.label: p for p in points}
        assert labels["dynamic"].dynamic and not labels["static"].dynamic
        assert labels["dynamic"].error_rate <= labels["static"].error_rate + 0.05

    def test_rounding_mode_comparison(self, sweep_problem):
        net, calib, test = sweep_problem
        points = stochastic_vs_deterministic(net, calib, test)
        assert {p.label for p in points} == {"deterministic", "stochastic"}

    def test_sweep_does_not_mutate_network(self, sweep_problem, rng):
        net, calib, test = sweep_problem
        x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        before = net.logits(x)
        bitwidth_sweep(net, calib, test, bit_widths=(8,))
        assert np.allclose(net.logits(x), before)


@pytest.fixture(scope="module")
def deployed_net(trained_small_net, small_data):
    train, _ = small_data
    net = trained_small_net.clone()
    mf = MFDFPNetwork.from_float(net, train.x[:128])
    return mf.deploy()


class TestFaultInjection:
    def test_zero_ber_is_identity(self, deployed_net, small_data):
        _, test = small_data
        result = inject_weight_faults(deployed_net, 0.0)
        assert result.flipped_bits == 0
        a = execute_deployed(deployed_net, test.x[:8])
        b = execute_deployed(result.faulty, test.x[:8])
        assert np.array_equal(a, b)

    def test_original_not_modified(self, deployed_net, rng):
        before = [op.weight_codes.copy() for op in deployed_net.ops if op.weight_codes is not None]
        inject_weight_faults(deployed_net, 0.5, rng)
        after = [op.weight_codes for op in deployed_net.ops if op.weight_codes is not None]
        assert all(np.array_equal(a, b) for a, b in zip(before, after))

    def test_flip_rate_statistics(self, deployed_net, rng):
        result = inject_weight_faults(deployed_net, 0.1, rng)
        rate = result.flipped_bits / result.total_weight_bits
        assert 0.07 < rate < 0.13

    def test_faulty_codes_still_4bit(self, deployed_net, rng):
        result = inject_weight_faults(deployed_net, 0.5, rng)
        for op in result.faulty.ops:
            if op.weight_codes is not None:
                assert op.weight_codes.max() <= 0x0F

    def test_invalid_ber_rejected(self, deployed_net):
        with pytest.raises(ValueError):
            inject_weight_faults(deployed_net, 1.5)

    def test_accuracy_degrades_with_ber(self, deployed_net, small_data):
        """Accuracy at heavy corruption must not exceed the clean accuracy
        by more than noise; the curve should trend downward."""
        _, test = small_data
        x, y = test.x[:100], test.y[:100]
        points = accuracy_under_faults(
            deployed_net, x, y, bit_error_rates=(0.0, 0.02, 0.3), rng=np.random.default_rng(0)
        )
        accs = dict(points)
        assert accs[0.0] >= accs[0.3] - 0.02
        assert accs[0.3] < accs[0.0] + 0.05

    def test_faulty_network_still_executes(self, deployed_net, small_data, rng):
        _, test = small_data
        result = inject_weight_faults(deployed_net, 0.25, rng)
        codes = execute_deployed(result.faulty, test.x[:4])
        assert np.abs(codes).max() <= 127


class TestFaultCopySharing:
    """inject_weight_faults shares immutable structure instead of deep
    copying the whole artifact (regression for the copy-cost satellite)."""

    def test_zero_flip_shares_weight_arrays(self, deployed_net):
        result = inject_weight_faults(deployed_net, 0.0)
        assert result.faulty is not deployed_net
        for orig, faulty in zip(deployed_net.ops, result.faulty.ops):
            assert faulty is not orig
            if orig.weight_codes is not None:
                assert faulty.weight_codes is orig.weight_codes

    def test_biases_and_untouched_codes_always_shared(self, deployed_net, rng):
        result = inject_weight_faults(deployed_net, 0.05, rng)
        for orig, faulty in zip(deployed_net.ops, result.faulty.ops):
            if orig.bias_int is not None:
                assert faulty.bias_int is orig.bias_int
            if orig.weight_codes is not None and not np.array_equal(
                orig.weight_codes, faulty.weight_codes
            ):
                assert faulty.weight_codes is not orig.weight_codes

    def test_heavy_injection_never_mutates_original(self, deployed_net):
        before = [
            op.weight_codes.copy()
            for op in deployed_net.ops
            if op.weight_codes is not None
        ]
        for trial in range(5):
            inject_weight_faults(deployed_net, 0.5, np.random.default_rng(trial))
        after = [
            op.weight_codes for op in deployed_net.ops if op.weight_codes is not None
        ]
        assert all(np.array_equal(a, b) for a, b in zip(before, after))


class TestFaultPointIndependence:
    """Each BER point derives an independent child generator (regression
    for the RNG cross-contamination satellite)."""

    def test_single_point_reproduces_curve_point(self, deployed_net, small_data):
        _, test = small_data
        x, y = test.x[:64], test.y[:64]
        curve = accuracy_under_faults(
            deployed_net, x, y, [1e-4, 1e-3, 1e-2], rng=np.random.default_rng(0)
        )
        for ber, acc in curve:
            single = accuracy_under_faults(
                deployed_net, x, y, [ber], rng=np.random.default_rng(0)
            )
            assert single == [(ber, acc)], f"point {ber} depends on its neighbours"

    def test_point_order_is_irrelevant(self, deployed_net, small_data):
        _, test = small_data
        x, y = test.x[:64], test.y[:64]
        bers = [1e-4, 1e-3, 1e-2, 0.1]
        forward = dict(
            accuracy_under_faults(deployed_net, x, y, bers, rng=np.random.default_rng(7))
        )
        backward = dict(
            accuracy_under_faults(
                deployed_net, x, y, bers[::-1], rng=np.random.default_rng(7)
            )
        )
        assert forward == backward

    def test_injected_faults_keyed_by_ber(self, deployed_net, small_data):
        """Two different BERs must not draw identical flip patterns."""
        from repro.analysis.faults import _point_rng

        a = _point_rng(1234, 1e-3).random(8)
        b = _point_rng(1234, 1e-2).random(8)
        c = _point_rng(1234, 1e-3).random(8)
        assert not np.array_equal(a, b)
        assert np.array_equal(a, c)
