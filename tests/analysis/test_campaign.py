"""The shared batched-evaluation API and the parallel campaign runner."""

import numpy as np
import pytest

from repro.analysis.campaign import (
    CAMPAIGN_KINDS,
    DEFAULT_POINTS,
    CampaignResult,
    evaluate_batched,
    parallel_map,
    run_campaign,
    shared_engine_cache,
    train_surrogate,
)
from repro.analysis.faults import accuracy_under_faults
from repro.analysis.sqnr import layer_sqnr_report, quantization_noise_campaign
from repro.analysis.sweeps import bitwidth_sweep, exponent_clamp_sweep
from repro.core.engine import EngineCache, execute_deployed
from repro.core.mfdfp import MFDFPNetwork, deploy_calibrated
from repro.core.quantizer import strip_quantization
from repro.hw import Accelerator, AcceleratorConfig
from repro.nn import error_rate
from repro.zoo import cifar10_small


@pytest.fixture(scope="module")
def problem(trained_small_net, small_data):
    train, test = small_data
    deployed = deploy_calibrated(trained_small_net.clone(), train.x[:128])
    return {
        "net": trained_small_net,
        "calib": train.x[:128],
        "test": test,
        "deployed": deployed,
    }


class TestEvaluateBatched:
    def test_deployed_matches_eager_execution(self, problem, small_data):
        _, test = small_data
        x, y = test.x[:64], test.y[:64]
        codes = execute_deployed(problem["deployed"], x)
        expected = float((codes.argmax(axis=1) == y).mean())
        assert evaluate_batched(problem["deployed"], x, y) == expected

    def test_deployed_chunking_is_invisible(self, problem, small_data):
        _, test = small_data
        x, y = test.x[:60], test.y[:60]
        full = evaluate_batched(problem["deployed"], x, y, batch_size=256)
        chunked = evaluate_batched(problem["deployed"], x, y, batch_size=7)
        assert full == chunked

    def test_mfdfp_network_matches_error_rate(self, problem, small_data):
        _, test = small_data
        mf = MFDFPNetwork.from_float(problem["net"].clone(), problem["calib"])
        acc = evaluate_batched(mf, test.x, test.y)
        assert acc == 1.0 - error_rate(mf.net, test)

    def test_plain_network_accepted(self, problem, small_data):
        _, test = small_data
        acc = evaluate_batched(problem["net"], test.x, test.y)
        assert acc == 1.0 - error_rate(problem["net"], test)

    def test_uses_provided_cache(self, problem, small_data):
        _, test = small_data
        cache = EngineCache(capacity=4)
        evaluate_batched(problem["deployed"], test.x[:8], test.y[:8], cache=cache)
        assert cache.misses == 1
        evaluate_batched(problem["deployed"], test.x[:8], test.y[:8], cache=cache)
        assert cache.hits >= 1 and cache.misses == 1

    def test_rejects_empty_and_mismatched(self, problem, small_data):
        _, test = small_data
        with pytest.raises(ValueError):
            evaluate_batched(problem["deployed"], test.x[:0], test.y[:0])
        with pytest.raises(ValueError):
            evaluate_batched(problem["deployed"], test.x[:4], test.y[:3])


class TestParallelMap:
    def test_preserves_order(self):
        fns = [lambda i=i: i * i for i in range(20)]
        assert parallel_map(fns, jobs=4) == [i * i for i in range(20)]

    def test_serial_inline(self):
        assert parallel_map([lambda: 1, lambda: 2], jobs=None) == [1, 2]
        assert parallel_map([], jobs=8) == []

    def test_exceptions_propagate(self):
        def boom():
            raise RuntimeError("point failed")

        with pytest.raises(RuntimeError, match="point failed"):
            parallel_map([lambda: 1, boom, lambda: 3], jobs=3)


class TestCampaignDeterminism:
    """The PR's core property: jobs=N is bit-identical to jobs=1."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_sweeps_bit_identical_across_jobs(self, small_data, seed):
        train, test = small_data
        net = cifar10_small(size=16, rng=np.random.default_rng(seed))
        calib = train.x[:64]
        serial = bitwidth_sweep(net, calib, test, bit_widths=(4, 8), jobs=1)
        threaded = bitwidth_sweep(net, calib, test, bit_widths=(4, 8), jobs=4)
        assert serial == threaded
        serial_c = exponent_clamp_sweep(net, calib, test, min_exps=(-3, -7), jobs=1)
        threaded_c = exponent_clamp_sweep(net, calib, test, min_exps=(-3, -7), jobs=4)
        assert serial_c == threaded_c

    @pytest.mark.parametrize("seed", [1, 9])
    def test_fault_curves_bit_identical_across_jobs(self, small_data, seed):
        train, test = small_data
        net = cifar10_small(size=16, rng=np.random.default_rng(seed))
        deployed = deploy_calibrated(net, train.x[:64])
        bers = (0.0, 1e-3, 1e-2, 0.1)
        serial = accuracy_under_faults(
            deployed, test.x[:64], test.y[:64], bers, rng=np.random.default_rng(seed), jobs=1
        )
        threaded = accuracy_under_faults(
            deployed, test.x[:64], test.y[:64], bers, rng=np.random.default_rng(seed), jobs=4
        )
        assert serial == threaded

    def test_engine_cache_hits_return_same_object(self, problem, small_data):
        """Across campaign points with equal content, the cache hands back
        the very same compiled engine."""
        _, test = small_data
        cache = EngineCache(capacity=8)
        first = cache.get(problem["deployed"])
        # same content deployed again -> same engine object, no recompile
        again = deploy_calibrated(problem["net"].clone(), problem["calib"])
        assert cache.get(again) is first
        # a zero-BER campaign point shares the clean content too
        run_campaign(
            "faults",
            deployed=problem["deployed"],
            x=test.x[:32],
            y=test.y[:32],
            points=1,  # BER 0.0
            jobs=2,
            cache=cache,
        )
        assert cache.get(problem["deployed"]) is first
        assert cache.misses == 1


class TestRunCampaign:
    def test_kinds_cover_defaults(self):
        assert set(CAMPAIGN_KINDS) == set(DEFAULT_POINTS)

    def test_bitwidth_campaign_matches_sweep(self, problem, small_data):
        _, test = small_data
        result = run_campaign(
            "bitwidth",
            net=problem["net"],
            calibration_x=problem["calib"],
            x=test.x,
            y=test.y,
            points=2,
            jobs=2,
        )
        direct = bitwidth_sweep(
            problem["net"], problem["calib"], test, bit_widths=DEFAULT_POINTS["bitwidth"][:2]
        )
        assert result.points == direct
        assert result.kind == "bitwidth" and result.jobs == 2
        assert result.elapsed_s > 0
        assert [row["label"] for row in result.rows()] == ["4-bit", "6-bit"]

    def test_faults_campaign_rows(self, problem, small_data):
        _, test = small_data
        result = run_campaign(
            "faults",
            deployed=problem["deployed"],
            x=test.x[:32],
            y=test.y[:32],
            points=2,
            jobs=2,
            rng=np.random.default_rng(3),
        )
        assert [p[0] for p in result.points] == [0.0, 1e-4]
        assert all(0.0 <= p[1] <= 1.0 for p in result.points)
        assert result.rows()[0]["label"] == "ber=0e+00"

    def test_rounding_campaign_honors_points_prefix(self, problem, small_data):
        _, test = small_data
        result = run_campaign(
            "rounding",
            net=problem["net"],
            calibration_x=problem["calib"],
            x=test.x,
            y=test.y,
            points=1,
        )
        assert [p.label for p in result.points] == ["deterministic"]

    def test_validation_errors(self, problem, small_data):
        _, test = small_data
        with pytest.raises(ValueError, match="unknown campaign"):
            run_campaign("voltage", x=test.x, y=test.y)
        with pytest.raises(ValueError, match="labelled test arrays"):
            run_campaign("bitwidth", net=problem["net"], calibration_x=problem["calib"])
        with pytest.raises(ValueError, match="deployed network"):
            run_campaign("faults", x=test.x, y=test.y)
        with pytest.raises(ValueError, match="net and calibration_x"):
            run_campaign("bitwidth", x=test.x, y=test.y)
        with pytest.raises(ValueError, match="points"):
            run_campaign(
                "faults", deployed=problem["deployed"], x=test.x, y=test.y, points=99
            )

    def test_points_edge_cases_pinned(self, problem, small_data):
        """points=0, beyond the prefix, and non-integral all raise the
        documented ValueError — never an index error or empty campaign."""
        from repro.analysis.campaign import campaign_points

        _, test = small_data
        for bad in (0, -1, 99):
            with pytest.raises(ValueError, match="points"):
                campaign_points("faults", bad)
            with pytest.raises(ValueError, match="points"):
                run_campaign(
                    "faults", deployed=problem["deployed"], x=test.x, y=test.y, points=bad
                )
        for bad in (1.5, "2", True):
            with pytest.raises(ValueError, match="points must be an integer"):
                campaign_points("faults", bad)
        # numpy integers from sweep grids are fine
        assert campaign_points("faults", np.int64(2)) == DEFAULT_POINTS["faults"][:2]
        # points=None is the full default list for every kind
        for kind in CAMPAIGN_KINDS:
            assert campaign_points(kind, None) == DEFAULT_POINTS[kind]
            assert campaign_points(kind, len(DEFAULT_POINTS[kind])) == DEFAULT_POINTS[kind]

    def test_shared_cache_is_a_bounded_singleton(self):
        cache = shared_engine_cache()
        assert cache is shared_engine_cache()
        assert isinstance(cache, EngineCache)
        assert cache.capacity >= 8

    def test_result_is_frozen(self):
        result = CampaignResult("faults", [], 1, 0.0, 0, 0)
        with pytest.raises(AttributeError):
            result.kind = "other"

    def test_concurrent_campaigns_account_their_own_cache_traffic(self, small_data):
        """Two campaigns racing on one shared cache must each report exactly
        their own lookups — the old before/after counter deltas let one
        campaign's traffic leak into the other's accounting."""
        import threading

        train, test = small_data
        cache = EngineCache(capacity=16)
        deployments = [
            deploy_calibrated(
                cifar10_small(size=16, rng=np.random.default_rng(seed)), train.x[:64]
            )
            for seed in (21, 22)
        ]
        results = [None, None]
        errors = []
        barrier = threading.Barrier(2)

        def campaign(slot):
            try:
                barrier.wait(timeout=30)
                results[slot] = run_campaign(
                    "faults",
                    deployed=deployments[slot],
                    x=test.x[:32],
                    y=test.y[:32],
                    points=4,
                    jobs=2,
                    rng=np.random.default_rng(slot),
                    cache=cache,
                )
            except Exception as exc:  # pragma: no cover - surfaced via errors
                errors.append(exc)

        threads = [threading.Thread(target=campaign, args=(slot,)) for slot in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for result in results:
            # one engine lookup per fault point, attributed to this campaign
            # alone: no cross-contamination from the concurrent sibling.
            assert result.cache_hits + result.cache_misses == len(result.points)
        # the shared cache saw exactly the union of both campaigns' traffic
        hits, misses = cache.counters()
        assert hits + misses == sum(len(r.points) for r in results)


class TestSqnrCampaign:
    def test_chunked_report_close_to_single_pass(self, problem, small_data):
        _, test = small_data
        float_net = strip_quantization(problem["net"].clone())
        quant_net = problem["net"].clone()
        MFDFPNetwork.from_float(quant_net, problem["calib"])
        x = test.x[:48]
        single = layer_sqnr_report(float_net, quant_net, x)
        chunked = layer_sqnr_report(float_net, quant_net, x, batch_size=13)
        assert [r.layer_name for r in single] == [r.layer_name for r in chunked]
        # float32 BLAS blocking varies with batch shape, so chunked forward
        # passes drift by ~1e-9 relative; anything beyond that is a bug.
        for a, b in zip(single, chunked):
            assert a.sqnr_db == pytest.approx(b.sqnr_db, rel=1e-6)
            assert a.max_abs_error == pytest.approx(b.max_abs_error, rel=1e-6, abs=1e-9)
            assert a.signal_range == pytest.approx(b.signal_range, rel=1e-6)

    def test_noise_campaign_deterministic_across_jobs(self, problem, small_data):
        _, test = small_data
        configs = [{"bits": 6}, {"bits": 8}]
        serial = quantization_noise_campaign(
            problem["net"], problem["calib"], test.x[:16], configs, jobs=1
        )
        threaded = quantization_noise_campaign(
            problem["net"], problem["calib"], test.x[:16], configs, jobs=2
        )
        assert serial == threaded
        assert len(serial) == 2


class TestAcceleratorEvaluate:
    def test_accuracy_matches_evaluate_batched(self, problem, small_data):
        _, test = small_data
        acc = Accelerator(AcceleratorConfig(precision="mfdfp"))
        x, y = test.x[:50], test.y[:50]
        report = acc.evaluate_deployed(problem["deployed"], x, y, batch_size=16)
        assert report["accuracy"] == evaluate_batched(problem["deployed"], x, y)
        assert report["samples"] == 50
        assert report["modeled_latency_us"] > 0
        assert report["modeled_energy_uj"] == pytest.approx(
            acc.power_mw * 1e-3 * report["modeled_latency_us"]
        )
        assert report["modeled_throughput_ips"] > 0

    def test_batched_accounting_beats_per_sample(self, problem, small_data):
        """The whole point: batch-resident weights make the modeled cost of
        an N-sample evaluation less than N single-sample inferences."""
        _, test = small_data
        acc = Accelerator(AcceleratorConfig(precision="mfdfp"))
        n = 32
        report = acc.evaluate_deployed(
            problem["deployed"], test.x[:n], test.y[:n], batch_size=n
        )
        per_sample_us = n * acc.latency_us(problem["deployed"])
        assert report["modeled_latency_us"] < per_sample_us

    def test_fp32_rejected(self, problem, small_data):
        _, test = small_data
        acc = Accelerator(AcceleratorConfig(precision="fp32"))
        with pytest.raises(ValueError):
            acc.evaluate_deployed(problem["deployed"], test.x[:4], test.y[:4])

    def test_empty_rejected(self, problem, small_data):
        _, test = small_data
        acc = Accelerator(AcceleratorConfig(precision="mfdfp"))
        with pytest.raises(ValueError):
            acc.evaluate_deployed(problem["deployed"], test.x[:0], test.y[:0])


class TestTrainSurrogate:
    def test_compiled_bit_identical_to_eager(self, small_data):
        """The campaign's surrogate training: fast path changes nothing."""
        train, test = small_data
        histories, weights = {}, {}
        for compiled in (False, True):
            net = cifar10_small(size=16, rng=np.random.default_rng(4))
            history, trainer = train_surrogate(
                net, train, test, epochs=2, rng=np.random.default_rng(2), compiled=compiled
            )
            histories[compiled] = history
            weights[compiled] = net.get_weights()
            assert (trainer.executor is not None) == compiled
        assert histories[False].train_losses == histories[True].train_losses
        assert histories[False].val_errors == histories[True].val_errors
        for name in weights[False]:
            assert np.array_equal(weights[False][name], weights[True][name])
