"""Campaign fan-out backends: jobs validation, cancellation, cross-backend identity."""

import functools
import os
import threading

import numpy as np
import pytest

from repro.analysis.campaign import (
    CAMPAIGN_KINDS,
    parallel_map,
    resolve_jobs,
    run_campaign,
)
from repro.core.mfdfp import deploy_calibrated
from repro.parallel import WorkerCrashedError
from repro.parallel import worker as worker_mod


@pytest.fixture(scope="module")
def problem(trained_small_net, small_data):
    train, test = small_data
    return {
        "net": trained_small_net,
        "calib": train.x[:128],
        "test": test,
        "deployed": deploy_calibrated(trained_small_net.clone(), train.x[:128]),
    }


class TestResolveJobs:
    def test_none_means_every_core(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ValueError, match="positive integer"):
            resolve_jobs(bad)

    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_parallel_map_and_run_campaign_validate(self, problem, small_data):
        _, test = small_data
        with pytest.raises(ValueError, match="positive integer"):
            parallel_map([lambda: 1], jobs=0)
        with pytest.raises(ValueError, match="positive integer"):
            run_campaign(
                "faults",
                deployed=problem["deployed"],
                x=test.x[:8],
                y=test.y[:8],
                jobs=-2,
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            parallel_map([lambda: 1], jobs=2, backend="fiber")


class TestThreadCancellation:
    def test_first_error_cancels_queued_points(self):
        """Points still queued when one fails are skipped, not run.

        Regression: the old implementation iterated ``fut.result()`` with
        no shutdown-on-error, so every queued point ran to completion
        (and kept burning cores) after the batch had already failed.
        """
        ran = []
        release = threading.Event()

        def failing():
            raise RuntimeError("point exploded")

        def blocker():
            release.wait(10.0)
            return "late"

        def side_effect():
            ran.append(1)

        # Frees the blocker *after* the failure has propagated, so the
        # test observes cancellation rather than deadlocking on cleanup.
        timer = threading.Timer(0.2, release.set)
        timer.start()
        try:
            with pytest.raises(RuntimeError, match="point exploded"):
                parallel_map([failing, blocker] + [side_effect] * 4, jobs=2)
        finally:
            release.set()
            timer.cancel()
        assert ran == []

    def test_order_preserved_under_threads(self):
        fns = [functools.partial(worker_mod.echo, i) for i in range(16)]
        assert parallel_map(fns, jobs=4) == list(range(16))


class TestProcessBackend:
    def test_order_and_results_match_thread_backend(self):
        fns = [functools.partial(worker_mod.echo, i * i) for i in range(12)]
        assert parallel_map(fns, jobs=2, backend="process") == parallel_map(fns, jobs=2)

    def test_original_error_type_propagates(self):
        fns = [
            functools.partial(worker_mod.echo, 0),
            functools.partial(worker_mod.fail, "bad point"),
        ]
        with pytest.raises(ValueError, match="bad point"):
            parallel_map(fns, jobs=2, backend="process")

    def test_killed_worker_is_a_typed_error_not_a_hang(self):
        """A worker dying mid-campaign surfaces WorkerCrashedError promptly."""
        fns = [functools.partial(worker_mod.echo, 1), worker_mod.crash]
        with pytest.raises(WorkerCrashedError):
            parallel_map(fns, jobs=2, backend="process")


def _campaign_kwargs(kind, problem, test, seed):
    kwargs = {"x": test.x[:32], "y": test.y[:32], "points": 2, "rng": np.random.default_rng(seed)}
    if kind == "faults":
        kwargs["deployed"] = problem["deployed"]
    else:
        kwargs["net"] = problem["net"]
        kwargs["calibration_x"] = problem["calib"]
    return kwargs


class TestCrossBackendIdentity:
    @pytest.mark.parametrize("kind", sorted(CAMPAIGN_KINDS))
    def test_process_backend_bit_identical_to_serial_thread(self, kind, problem, small_data):
        """Every campaign kind: jobs=1/thread == jobs=2/process, exactly.

        The serial thread run is the reference ordering; the process run
        pickles the tasks (rng state replays identically) and fans them
        out across workers.  Placement must not leak into the numbers.
        """
        _, test = small_data
        serial = run_campaign(
            kind, jobs=1, backend="thread", **_campaign_kwargs(kind, problem, test, seed=7)
        )
        fanned = run_campaign(
            kind, jobs=2, backend="process", **_campaign_kwargs(kind, problem, test, seed=7)
        )
        assert serial.points == fanned.points
        assert serial.backend == "thread" and fanned.backend == "process"
        assert fanned.jobs == 2

    def test_jobs_none_resolves_to_cpu_count(self, problem, small_data):
        _, test = small_data
        result = run_campaign(
            "faults",
            deployed=problem["deployed"],
            x=test.x[:16],
            y=test.y[:16],
            points=1,
            jobs=None,
            rng=np.random.default_rng(0),
        )
        assert result.jobs == (os.cpu_count() or 1)
