"""Pareto geometry: dominance, frontier extraction, margin pruning."""

import math

import pytest

from repro.analysis.frontier import Objective, dominates, pareto_frontier, prune_dominated

ACC = Objective("accuracy", key=lambda p: p["acc"], maximize=True)
ENERGY = Objective("energy", key=lambda p: p["energy"])
AREA = Objective("area", key=lambda p: p["area"])


def pt(acc, energy, area=1.0):
    return {"acc": acc, "energy": energy, "area": area}


class TestDominates:
    def test_better_everywhere_dominates(self):
        assert dominates(pt(0.9, 1.0), pt(0.8, 2.0), [ACC, ENERGY])

    def test_equal_points_do_not_dominate_each_other(self):
        a, b = pt(0.9, 1.0), pt(0.9, 1.0)
        assert not dominates(a, b, [ACC, ENERGY])
        assert not dominates(b, a, [ACC, ENERGY])

    def test_tradeoff_is_incomparable(self):
        a, b = pt(0.9, 2.0), pt(0.8, 1.0)  # a: better acc, worse energy
        assert not dominates(a, b, [ACC, ENERGY])
        assert not dominates(b, a, [ACC, ENERGY])

    def test_tie_on_one_axis_strict_on_other(self):
        assert dominates(pt(0.9, 1.0), pt(0.9, 2.0), [ACC, ENERGY])

    def test_direction_respected(self):
        # On energy alone (minimize), the cheaper point dominates.
        assert dominates(pt(0.1, 1.0), pt(0.9, 2.0), [ENERGY])
        assert not dominates(pt(0.1, 1.0), pt(0.9, 2.0), [ACC])

    def test_nan_objective_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            dominates(pt(float("nan"), 1.0), pt(0.5, 1.0), [ACC, ENERGY])
        with pytest.raises(ValueError, match="finite"):
            dominates(pt(0.5, 1.0), pt(0.5, math.inf), [ACC, ENERGY])

    def test_empty_objectives_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            dominates(pt(1, 1), pt(2, 2), [])
        with pytest.raises(ValueError, match="objective"):
            pareto_frontier([pt(1, 1)], [])

    def test_non_objective_rejected(self):
        with pytest.raises(TypeError, match="Objective"):
            pareto_frontier([pt(1, 1)], [lambda p: p["acc"]])


class TestParetoFrontier:
    def test_classic_staircase(self):
        points = [
            pt(0.95, 9.0),  # frontier: best acc
            pt(0.90, 5.0),  # frontier
            pt(0.85, 2.0),  # frontier
            pt(0.84, 5.5),  # dominated by 0.90/5.0
            pt(0.60, 8.0),  # dominated
        ]
        assert pareto_frontier(points, [ACC, ENERGY]) == points[:3]

    def test_order_preserved(self):
        points = [pt(0.85, 2.0), pt(0.95, 9.0), pt(0.90, 5.0)]
        assert pareto_frontier(points, [ACC, ENERGY]) == points

    def test_duplicates_both_survive(self):
        a, b = pt(0.9, 1.0), pt(0.9, 1.0)
        assert pareto_frontier([a, b], [ACC, ENERGY]) == [a, b]

    def test_single_and_empty_inputs(self):
        only = pt(0.5, 1.0)
        assert pareto_frontier([only], [ACC, ENERGY]) == [only]
        assert pareto_frontier([], [ACC, ENERGY]) == []

    def test_three_objectives(self):
        a = pt(0.9, 5.0, area=3.0)
        b = pt(0.8, 4.0, area=2.0)
        c = pt(0.8, 6.0, area=4.0)  # dominated by b on all three axes
        assert pareto_frontier([a, b, c], [ACC, ENERGY, AREA]) == [a, b]

    def test_frontier_is_idempotent(self):
        points = [pt(0.95, 9.0), pt(0.90, 5.0), pt(0.1, 9.5), pt(0.2, 7.0)]
        front = pareto_frontier(points, [ACC, ENERGY])
        assert pareto_frontier(front, [ACC, ENERGY]) == front


class TestPruneDominated:
    def test_zero_margin_equals_frontier(self):
        points = [pt(0.95, 9.0), pt(0.90, 5.0), pt(0.84, 5.5), pt(0.60, 8.0)]
        assert prune_dominated(points, [ACC, ENERGY]) == pareto_frontier(points, [ACC, ENERGY])

    def test_margin_keeps_near_frontier_points(self):
        noisy_acc = Objective("accuracy", key=lambda p: p["acc"], maximize=True, margin=0.05)
        points = [
            pt(0.90, 5.0),
            pt(0.87, 5.5),  # dominated, but within the 0.05 accuracy margin
            pt(0.70, 6.0),  # clearly dominated even with the credit
        ]
        kept = prune_dominated(points, [noisy_acc, ENERGY])
        assert kept == points[:2]

    def test_margin_only_credits_its_own_objective(self):
        noisy_acc = Objective("accuracy", key=lambda p: p["acc"], maximize=True, margin=0.05)
        # equal energy, accuracy gap inside the margin: the credited
        # candidate is no longer beaten anywhere, so both survive.
        points = [pt(0.90, 5.0), pt(0.89, 5.0)]
        kept = prune_dominated(points, [noisy_acc, ENERGY])
        assert kept == points

    def test_margin_never_prunes_exact_ties(self):
        """An exact tie on the noisy axis sits inside any margin, so a
        strictly-cheaper point never margin-prunes an accuracy-equal one.
        Callers that *know* two points measure identically (the explorer's
        technology twins) must settle them on the exact axes themselves."""
        noisy_acc = Objective("accuracy", key=lambda p: p["acc"], maximize=True, margin=0.05)
        points = [pt(0.90, 5.0), pt(0.90, 6.0)]
        assert prune_dominated(points, [noisy_acc, ENERGY]) == points

    def test_negative_or_nan_margin_rejected(self):
        with pytest.raises(ValueError, match="margin"):
            Objective("a", key=lambda p: p, margin=-0.1)
        with pytest.raises(ValueError, match="margin"):
            Objective("a", key=lambda p: p, margin=float("nan"))
        with pytest.raises(TypeError, match="margin"):
            Objective("a", key=lambda p: p, margin=True)
        with pytest.raises(TypeError, match="callable"):
            Objective("a", key="not-callable")
