"""Shared fixtures: RNGs, small datasets, and a lightly trained network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import cifar10_surrogate
from repro.nn import SGD, Trainer
from repro.zoo import cifar10_small


def pytest_configure(config):
    """Register repo-local markers (no pytest.ini; tier-1 runs everything).

    ``stress`` marks the multithreaded serving stress tests — part of the
    tier-1 run by default, deselectable with ``-m "not stress"`` on
    constrained machines.
    """
    config.addinivalue_line(
        "markers", "stress: concurrency stress tests (in tier-1; deselect with -m 'not stress')"
    )


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_data():
    """Small surrogate CIFAR dataset (16x16) shared across tests."""
    return cifar10_surrogate(n_train=400, n_test=120, size=16, seed=3)


@pytest.fixture(scope="session")
def trained_small_net(small_data):
    """A cifar10_small network trained for a few epochs (session-scoped).

    Tests must NOT mutate this network; use ``.clone()``.
    """
    train, test = small_data
    net = cifar10_small(size=16, rng=np.random.default_rng(7))
    optimizer = SGD(net.params, lr=0.02, momentum=0.9)
    trainer = Trainer(net, optimizer, batch_size=32, rng=np.random.default_rng(11))
    trainer.fit(train, test, epochs=6)
    return net


def numerical_gradient(f, x, eps=1e-5):
    """Central-difference gradient of scalar function ``f`` at array ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


@pytest.fixture
def gradcheck():
    return numerical_gradient
