"""Regenerate the golden deployed artifacts (run only on format changes).

Usage::

    PYTHONPATH=src python tests/data/golden/make_golden.py

Writes, into this directory:

* ``deployed_v2.npz`` — the tiny reference network in the current
  container format;
* ``deployed_v1_legacy.npz`` — the same network in the legacy
  ``repro.hw.export`` version-1 layout (byte layout reproduced here,
  since the writer for it no longer exists in the codebase);
* ``expected.npz`` — a fixed input batch and the engine's output codes;
* ``golden.json`` — the engine fingerprint and provenance notes.

The committed files are a format-stability contract: regenerating them
is only legitimate alongside a deliberate, loader-branch-accompanied
format change (see ``tests/io/test_golden_artifact.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.engine import engine_fingerprint, execute_deployed
from repro.core.mfdfp import DeployedLayer, DeployedMFDFP
from repro.io.artifacts import FORMAT_VERSION, save_deployed

HERE = Path(__file__).parent

#: The legacy writer's field list (no ``groups`` — v1 predates grouped conv).
_V1_OP_FIELDS = (
    "kind",
    "name",
    "in_frac",
    "out_frac",
    "activation",
    "in_channels",
    "out_channels",
    "kernel_size",
    "stride",
    "pad",
    "ceil_mode",
    "in_features",
    "out_features",
)


def build_golden() -> DeployedMFDFP:
    """A tiny, fully deterministic deployed network (conv/pool/dense)."""
    rng = np.random.default_rng(2017)
    deployed = DeployedMFDFP(name="golden_tiny", input_shape=(2, 6, 6), input_frac=4, bits=8)
    deployed.ops.append(
        DeployedLayer(
            kind="conv",
            name="conv1",
            in_frac=4,
            out_frac=3,
            weight_codes=rng.integers(0, 16, size=(3, 2, 3, 3)),
            bias_int=rng.integers(-2000, 2000, size=3),
            activation="relu",
            in_channels=2,
            out_channels=3,
            kernel_size=3,
            stride=1,
            pad=1,
        )
    )
    deployed.ops.append(
        DeployedLayer(
            kind="maxpool",
            name="pool1",
            in_frac=3,
            out_frac=3,
            kernel_size=2,
            stride=2,
            ceil_mode=True,
        )
    )
    deployed.ops.append(DeployedLayer(kind="flatten", name="flat", in_frac=3, out_frac=3))
    deployed.ops.append(
        DeployedLayer(
            kind="dense",
            name="ip1",
            in_frac=3,
            out_frac=2,
            weight_codes=rng.integers(0, 16, size=(5, 27)),
            bias_int=rng.integers(-2000, 2000, size=5),
            in_features=27,
            out_features=5,
        )
    )
    return deployed


def write_v1_legacy(deployed: DeployedMFDFP, path: Path) -> None:
    """Byte-for-byte reproduction of the seed ``repro.hw.export`` writer."""
    header = {
        "format_version": 1,
        "name": deployed.name,
        "input_shape": list(deployed.input_shape),
        "input_frac": deployed.input_frac,
        "bits": deployed.bits,
        "ops": [
            {field: getattr(op, field) for field in _V1_OP_FIELDS} for op in deployed.ops
        ],
    }
    arrays = {"__header__": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)}
    for i, op in enumerate(deployed.ops):
        if op.weight_codes is not None:
            arrays[f"op{i}.weight_codes"] = op.weight_codes
            arrays[f"op{i}.weight_shape"] = np.array(op.weight_codes.shape, dtype=np.int64)
        if op.bias_int is not None:
            arrays[f"op{i}.bias_int"] = op.bias_int
    np.savez(path, **arrays)


def main() -> None:
    deployed = build_golden()
    save_deployed(deployed, HERE / "deployed_v2.npz")
    write_v1_legacy(deployed, HERE / "deployed_v1_legacy.npz")
    x = np.random.default_rng(7).normal(scale=0.5, size=(3, 2, 6, 6))
    np.savez(HERE / "expected.npz", x=x, out_codes=execute_deployed(deployed, x))
    (HERE / "golden.json").write_text(
        json.dumps(
            {
                "fingerprint": engine_fingerprint(deployed),
                "written_with_format_version": FORMAT_VERSION,
                "note": "regenerate only with a deliberate format change "
                "(python tests/data/golden/make_golden.py)",
            },
            indent=2,
        )
        + "\n"
    )
    print("golden artifacts written:", engine_fingerprint(deployed))


if __name__ == "__main__":
    main()
