"""Dtype discipline: a float32 training step must stay float32 end to end.

NumPy upcasts to float64 at the slightest provocation (a float64 mask, a
division by a float64 array), silently doubling memory traffic in the
training hot loop.  These tests pin, layer by layer, that activations,
gradients, parameters, their gradients, and the optimizer state of a
float32 conv+dense network are float32 after a full
forward/backward/step — on both the eager and the compiled path.
"""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    Network,
    ReLU,
    SoftmaxCrossEntropy,
)


def f32_net():
    rng = np.random.default_rng(0)
    return Network(
        [
            Conv2D(3, 4, 3, pad=1, dtype=np.float32, rng=rng, name="c1"),
            ReLU(name="r1"),
            MaxPool2D(2, stride=2, name="p1"),
            Conv2D(4, 4, 3, pad=1, dtype=np.float32, rng=rng, name="c2"),
            ReLU(name="r2"),
            AvgPool2D(2, stride=2, name="p2"),
            Dropout(0.4, rng=np.random.default_rng(3), name="d1"),
            Flatten(name="fl"),
            Dense(4 * 2 * 2, 3, dtype=np.float32, rng=rng, name="fc"),
        ],
        input_shape=(3, 8, 8),
        name="f32",
    )


def batch():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(6, 3, 8, 8)).astype(np.float32)
    y = rng.integers(0, 3, size=6)
    return x, y


class TestFloat32Discipline:
    def test_forward_activations_stay_float32(self):
        net = f32_net()
        x, _ = batch()
        net.set_training(True)
        out = x
        for layer in net.layers:
            out = layer.forward(out)
            assert out.dtype == np.float32, f"{layer.name} upcast activations to {out.dtype}"

    def test_backward_gradients_stay_float32(self):
        net = f32_net()
        x, y = batch()
        loss = SoftmaxCrossEntropy()
        logits = net.forward(x, training=True)
        assert logits.dtype == np.float32
        loss.forward(logits, y)
        grad = loss.backward()
        assert grad.dtype == np.float32, "loss gradient upcast"
        for layer in reversed(net.layers):
            grad = layer.backward(grad)
            assert grad.dtype == np.float32, f"{layer.name} upcast gradients to {grad.dtype}"

    def test_param_grads_and_optimizer_state_stay_float32(self):
        net = f32_net()
        x, y = batch()
        loss = SoftmaxCrossEntropy()
        optimizer = SGD(net.params, lr=0.01, momentum=0.9)
        loss.forward(net.forward(x, training=True), y)
        net.zero_grad()
        net.backward(loss.backward())
        for p in net.params:
            assert p.grad.dtype == np.float32, f"{p.name}.grad upcast to {p.grad.dtype}"
        optimizer.step()
        for p, v in zip(optimizer.params, optimizer._velocity):
            assert p.data.dtype == np.float32, f"{p.name} upcast to {p.data.dtype}"
            assert v.dtype == np.float32, f"{p.name} velocity upcast to {v.dtype}"

    @pytest.mark.parametrize("compiled", [False, True])
    def test_full_step_through_trainer(self, compiled):
        from repro.nn import ArrayDataset, Trainer

        net = f32_net()
        x, y = batch()
        data = ArrayDataset(np.concatenate([x] * 4), np.concatenate([y] * 4))
        trainer = Trainer(
            net,
            SGD(net.params, lr=0.01, momentum=0.9),
            batch_size=8,
            rng=np.random.default_rng(2),
            compiled=compiled,
        )
        trainer.fit(data, data, epochs=2)  # past the trace batch when compiled
        for p in net.params:
            assert p.data.dtype == np.float32
            assert p.grad.dtype == np.float32
        logits = trainer.forward_batch(x, training=True)
        assert logits.dtype == np.float32
