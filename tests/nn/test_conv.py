"""Conv2D: geometry, im2col/col2im, known values, gradient checks."""

import numpy as np
import pytest

from repro.nn.layers.conv import Conv2D, col2im, conv_output_size, im2col


class TestConvOutputSize:
    def test_unit_kernel(self):
        assert conv_output_size(8, 1, 1, 0) == 8

    def test_same_padding(self):
        assert conv_output_size(32, 5, 1, 2) == 32

    def test_stride(self):
        assert conv_output_size(227, 11, 4, 0) == 55

    def test_floor_mode(self):
        # (10 - 3) // 2 + 1 = 4 (floor, as in Caffe convolutions)
        assert conv_output_size(10, 3, 2, 0) == 4

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_shapes(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols, oh, ow = im2col(x, 3, 3, 1, 1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2, 3 * 9, 64)

    def test_values_identity_kernel_position(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        cols, oh, ow = im2col(x, 1, 1, 1, 0)
        assert np.allclose(cols[0, 0].reshape(4, 4), x[0, 0])

    def test_stride_skips_positions(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        cols, oh, ow = im2col(x, 3, 3, 2, 0)
        assert (oh, ow) == (2, 2)
        # first column is the top-left 3x3 patch, flattened
        assert np.allclose(cols[0, :, 0], x[0, 0, 0:3, 0:3].ravel())
        # last column is the bottom-right patch starting at (2, 2)
        assert np.allclose(cols[0, :, -1], x[0, 0, 2:5, 2:5].ravel())

    def test_padding_zeroes(self, rng):
        x = rng.normal(size=(1, 1, 3, 3))
        cols, oh, ow = im2col(x, 3, 3, 1, 1)
        # first patch includes the zero padding at top-left
        patch = cols[0, :, 0].reshape(3, 3)
        assert np.all(patch[0, :] == 0)
        assert np.all(patch[:, 0] == 0)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = rng.normal(size=(2, 3, 7, 6))
        cols, oh, ow = im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, 2, 1)).sum())
        assert np.isclose(lhs, rhs)


def _loop_col2im(cols, x_shape, kh, kw, stride, pad):
    """The historical kh*kw tap-loop col2im — the scatter's reference."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    dx = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols[
                :, :, i, j
            ]
    if pad:
        dx = dx[:, :, pad : hp - pad, pad : wp - pad]
    return dx


class TestCol2imScatter:
    """The flat-index scatter must be bit-identical to the old tap loop.

    Float accumulation order matters, so equality is asserted with
    ``array_equal`` (exact bits), not ``allclose`` — per target element
    the scatter adds contributions in kernel-tap order, exactly as the
    loop did.
    """

    GEOMETRIES = [
        # (n, c, h, w, kh, kw, stride, pad)
        (2, 3, 7, 6, 3, 3, 2, 1),
        (4, 8, 16, 16, 5, 5, 1, 2),
        (1, 1, 5, 5, 3, 3, 1, 0),
        (3, 2, 9, 9, 2, 4, 3, 2),
        (2, 4, 8, 8, 1, 1, 1, 0),
    ]

    @pytest.mark.parametrize("geometry", GEOMETRIES)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bit_identical_to_loop(self, rng, geometry, dtype):
        n, c, h, w, kh, kw, stride, pad = geometry
        oh = conv_output_size(h, kh, stride, pad)
        ow = conv_output_size(w, kw, stride, pad)
        cols = rng.normal(size=(n, c * kh * kw, oh * ow)).astype(dtype)
        got = col2im(cols, (n, c, h, w), kh, kw, stride, pad)
        ref = _loop_col2im(cols, (n, c, h, w), kh, kw, stride, pad)
        assert got.dtype == ref.dtype
        assert np.array_equal(got, ref)

    def test_out_workspace_reused(self, rng):
        n, c, h, w, k, s, p = 2, 3, 8, 8, 3, 1, 1
        oh = conv_output_size(h, k, s, p)
        cols = rng.normal(size=(n, c * k * k, oh * oh)).astype(np.float32)
        ws = np.full((n, c, h + 2 * p, w + 2 * p), 99.0, dtype=np.float32)  # stale junk
        got = col2im(cols, (n, c, h, w), k, k, s, p, out=ws)
        ref = col2im(cols, (n, c, h, w), k, k, s, p)
        assert np.array_equal(got, ref)
        assert got.base is ws  # a view of the caller's workspace

    def test_out_validates_shape_and_dtype(self, rng):
        cols = rng.normal(size=(1, 9, 9)).astype(np.float32)
        with pytest.raises(ValueError):
            col2im(cols, (1, 1, 3, 3), 3, 3, 1, 1, out=np.empty((1, 1, 3, 3), np.float32))
        with pytest.raises(ValueError):
            col2im(cols, (1, 1, 3, 3), 3, 3, 1, 1, out=np.empty((1, 1, 5, 5), np.float64))

    def test_per_sample_fallback_above_combined_limit(self, rng, monkeypatch):
        """Huge batches skip the batch-combined index cache, same bits."""
        import repro.nn.layers.conv as conv_mod

        n, c, h, w, k, s, p = 3, 2, 6, 6, 3, 1, 1
        oh = conv_output_size(h, k, s, p)
        cols = rng.normal(size=(n, c * k * k, oh * oh)).astype(np.float32)
        ref = col2im(cols, (n, c, h, w), k, k, s, p)
        monkeypatch.setattr(conv_mod, "_COL2IM_COMBINED_LIMIT", 1)
        got = col2im(cols, (n, c, h, w), k, k, s, p)
        assert np.array_equal(got, ref)


class TestConvForward:
    def test_known_values_1x1(self):
        layer = Conv2D(1, 1, 1, bias=True, dtype=np.float64)
        layer.weight.data = np.full((1, 1, 1, 1), 2.0)
        layer.bias.data = np.array([1.0])
        x = np.arange(4.0).reshape(1, 1, 2, 2)
        y = layer.forward(x)
        assert np.allclose(y, 2 * x + 1)

    def test_known_values_sum_kernel(self):
        layer = Conv2D(1, 1, 2, bias=False, dtype=np.float64)
        layer.weight.data = np.ones((1, 1, 2, 2))
        x = np.arange(9.0).reshape(1, 1, 3, 3)
        y = layer.forward(x)
        expected = np.array([[0 + 1 + 3 + 4, 1 + 2 + 4 + 5], [3 + 4 + 6 + 7, 4 + 5 + 7 + 8]])
        assert np.allclose(y[0, 0], expected)

    def test_multi_channel_sums_over_channels(self, rng):
        layer = Conv2D(3, 1, 1, bias=False, dtype=np.float64)
        layer.weight.data = np.ones((1, 3, 1, 1))
        x = rng.normal(size=(2, 3, 4, 4))
        y = layer.forward(x)
        assert np.allclose(y[:, 0], x.sum(axis=1))

    def test_output_shape_method_matches_forward(self, rng):
        layer = Conv2D(3, 8, 5, stride=2, pad=2, dtype=np.float64)
        x = rng.normal(size=(2, 3, 11, 13))
        y = layer.forward(x)
        assert y.shape[1:] == layer.output_shape((3, 11, 13))

    def test_channel_mismatch_raises(self):
        layer = Conv2D(3, 8, 3)
        with pytest.raises(ValueError):
            layer.output_shape((4, 8, 8))

    def test_macs_count(self):
        layer = Conv2D(3, 32, 5, stride=1, pad=2)
        # 32x32 output positions, 32 kernels, 75 synapses each
        assert layer.macs((3, 32, 32)) == 32 * 32 * 32 * 75

    def test_bias_disabled(self, rng):
        layer = Conv2D(2, 4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.params) == 1


class TestConvBackward:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 2), (2, 1)])
    def test_grad_wrt_input(self, rng, gradcheck, stride, pad):
        layer = Conv2D(2, 3, 3, stride=stride, pad=pad, dtype=np.float64, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6))
        g = rng.normal(size=layer.forward(x).shape)
        dx = layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), x)
        assert np.allclose(dx, num, atol=1e-6)

    def test_grad_wrt_weight(self, rng, gradcheck):
        layer = Conv2D(2, 3, 3, pad=1, dtype=np.float64, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        g = rng.normal(size=layer.forward(x).shape)
        layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), layer.weight.data)
        assert np.allclose(layer.weight.grad, num, atol=1e-6)

    def test_grad_wrt_bias(self, rng, gradcheck):
        layer = Conv2D(2, 3, 3, dtype=np.float64, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        g = rng.normal(size=layer.forward(x).shape)
        layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), layer.bias.data)
        assert np.allclose(layer.bias.grad, num, atol=1e-6)

    def test_backward_before_forward_raises(self):
        layer = Conv2D(1, 1, 1)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 1, 1)))


class TestConvQuantizerHooks:
    def test_weight_quantizer_applied(self, rng):
        layer = Conv2D(1, 1, 1, bias=False, dtype=np.float64)
        layer.weight.data = np.array([[[[0.3]]]])
        layer.weight_quantizer = lambda w: np.round(w)
        x = np.ones((1, 1, 2, 2))
        assert np.allclose(layer.forward(x), 0.0)
        assert layer.weight.data[0, 0, 0, 0] == 0.3  # master untouched

    def test_output_quantizer_applied(self, rng):
        layer = Conv2D(1, 1, 1, bias=False, dtype=np.float64)
        layer.weight.data = np.array([[[[1.0]]]])
        layer.output_quantizer = lambda y: np.floor(y)
        x = np.full((1, 1, 2, 2), 1.7)
        assert np.allclose(layer.forward(x), 1.0)

    def test_gradient_flows_to_master_under_quantized_forward(self, rng):
        """Gradients are w.r.t. quantized weights but land on the master."""
        layer = Conv2D(1, 1, 1, bias=False, dtype=np.float64)
        layer.weight.data = np.array([[[[0.4]]]])
        layer.weight_quantizer = lambda w: np.ones_like(w)  # forward sees 1.0
        x = np.full((1, 1, 1, 1), 3.0)
        y = layer.forward(x)
        assert y[0, 0, 0, 0] == 3.0
        layer.backward(np.ones_like(y))
        assert layer.weight.grad[0, 0, 0, 0] == 3.0  # dL/dw_q = x
