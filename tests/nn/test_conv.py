"""Conv2D: geometry, im2col/col2im, known values, gradient checks."""

import numpy as np
import pytest

from repro.nn.layers.conv import Conv2D, col2im, conv_output_size, im2col


class TestConvOutputSize:
    def test_unit_kernel(self):
        assert conv_output_size(8, 1, 1, 0) == 8

    def test_same_padding(self):
        assert conv_output_size(32, 5, 1, 2) == 32

    def test_stride(self):
        assert conv_output_size(227, 11, 4, 0) == 55

    def test_floor_mode(self):
        # (10 - 3) // 2 + 1 = 4 (floor, as in Caffe convolutions)
        assert conv_output_size(10, 3, 2, 0) == 4

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_shapes(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols, oh, ow = im2col(x, 3, 3, 1, 1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2, 3 * 9, 64)

    def test_values_identity_kernel_position(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        cols, oh, ow = im2col(x, 1, 1, 1, 0)
        assert np.allclose(cols[0, 0].reshape(4, 4), x[0, 0])

    def test_stride_skips_positions(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        cols, oh, ow = im2col(x, 3, 3, 2, 0)
        assert (oh, ow) == (2, 2)
        # first column is the top-left 3x3 patch, flattened
        assert np.allclose(cols[0, :, 0], x[0, 0, 0:3, 0:3].ravel())
        # last column is the bottom-right patch starting at (2, 2)
        assert np.allclose(cols[0, :, -1], x[0, 0, 2:5, 2:5].ravel())

    def test_padding_zeroes(self, rng):
        x = rng.normal(size=(1, 1, 3, 3))
        cols, oh, ow = im2col(x, 3, 3, 1, 1)
        # first patch includes the zero padding at top-left
        patch = cols[0, :, 0].reshape(3, 3)
        assert np.all(patch[0, :] == 0)
        assert np.all(patch[:, 0] == 0)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = rng.normal(size=(2, 3, 7, 6))
        cols, oh, ow = im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, 2, 1)).sum())
        assert np.isclose(lhs, rhs)


class TestConvForward:
    def test_known_values_1x1(self):
        layer = Conv2D(1, 1, 1, bias=True, dtype=np.float64)
        layer.weight.data = np.full((1, 1, 1, 1), 2.0)
        layer.bias.data = np.array([1.0])
        x = np.arange(4.0).reshape(1, 1, 2, 2)
        y = layer.forward(x)
        assert np.allclose(y, 2 * x + 1)

    def test_known_values_sum_kernel(self):
        layer = Conv2D(1, 1, 2, bias=False, dtype=np.float64)
        layer.weight.data = np.ones((1, 1, 2, 2))
        x = np.arange(9.0).reshape(1, 1, 3, 3)
        y = layer.forward(x)
        expected = np.array([[0 + 1 + 3 + 4, 1 + 2 + 4 + 5], [3 + 4 + 6 + 7, 4 + 5 + 7 + 8]])
        assert np.allclose(y[0, 0], expected)

    def test_multi_channel_sums_over_channels(self, rng):
        layer = Conv2D(3, 1, 1, bias=False, dtype=np.float64)
        layer.weight.data = np.ones((1, 3, 1, 1))
        x = rng.normal(size=(2, 3, 4, 4))
        y = layer.forward(x)
        assert np.allclose(y[:, 0], x.sum(axis=1))

    def test_output_shape_method_matches_forward(self, rng):
        layer = Conv2D(3, 8, 5, stride=2, pad=2, dtype=np.float64)
        x = rng.normal(size=(2, 3, 11, 13))
        y = layer.forward(x)
        assert y.shape[1:] == layer.output_shape((3, 11, 13))

    def test_channel_mismatch_raises(self):
        layer = Conv2D(3, 8, 3)
        with pytest.raises(ValueError):
            layer.output_shape((4, 8, 8))

    def test_macs_count(self):
        layer = Conv2D(3, 32, 5, stride=1, pad=2)
        # 32x32 output positions, 32 kernels, 75 synapses each
        assert layer.macs((3, 32, 32)) == 32 * 32 * 32 * 75

    def test_bias_disabled(self, rng):
        layer = Conv2D(2, 4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.params) == 1


class TestConvBackward:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 2), (2, 1)])
    def test_grad_wrt_input(self, rng, gradcheck, stride, pad):
        layer = Conv2D(2, 3, 3, stride=stride, pad=pad, dtype=np.float64, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6))
        g = rng.normal(size=layer.forward(x).shape)
        dx = layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), x)
        assert np.allclose(dx, num, atol=1e-6)

    def test_grad_wrt_weight(self, rng, gradcheck):
        layer = Conv2D(2, 3, 3, pad=1, dtype=np.float64, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        g = rng.normal(size=layer.forward(x).shape)
        layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), layer.weight.data)
        assert np.allclose(layer.weight.grad, num, atol=1e-6)

    def test_grad_wrt_bias(self, rng, gradcheck):
        layer = Conv2D(2, 3, 3, dtype=np.float64, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        g = rng.normal(size=layer.forward(x).shape)
        layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), layer.bias.data)
        assert np.allclose(layer.bias.grad, num, atol=1e-6)

    def test_backward_before_forward_raises(self):
        layer = Conv2D(1, 1, 1)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 1, 1)))


class TestConvQuantizerHooks:
    def test_weight_quantizer_applied(self, rng):
        layer = Conv2D(1, 1, 1, bias=False, dtype=np.float64)
        layer.weight.data = np.array([[[[0.3]]]])
        layer.weight_quantizer = lambda w: np.round(w)
        x = np.ones((1, 1, 2, 2))
        assert np.allclose(layer.forward(x), 0.0)
        assert layer.weight.data[0, 0, 0, 0] == 0.3  # master untouched

    def test_output_quantizer_applied(self, rng):
        layer = Conv2D(1, 1, 1, bias=False, dtype=np.float64)
        layer.weight.data = np.array([[[[1.0]]]])
        layer.output_quantizer = lambda y: np.floor(y)
        x = np.full((1, 1, 2, 2), 1.7)
        assert np.allclose(layer.forward(x), 1.0)

    def test_gradient_flows_to_master_under_quantized_forward(self, rng):
        """Gradients are w.r.t. quantized weights but land on the master."""
        layer = Conv2D(1, 1, 1, bias=False, dtype=np.float64)
        layer.weight.data = np.array([[[[0.4]]]])
        layer.weight_quantizer = lambda w: np.ones_like(w)  # forward sees 1.0
        x = np.full((1, 1, 1, 1), 3.0)
        y = layer.forward(x)
        assert y[0, 0, 0, 0] == 3.0
        layer.backward(np.ones_like(y))
        assert layer.weight.grad[0, 0, 0, 0] == 3.0  # dL/dw_q = x
