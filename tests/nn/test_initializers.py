"""Initializer statistics and registry."""

import numpy as np
import pytest

from repro.nn.initializers import (
    gaussian_init,
    he_init,
    resolve_initializer,
    xavier_init,
    zeros_init,
)


class TestInitializers:
    def test_gaussian_statistics(self, rng):
        w = gaussian_init((200, 200), 200, 200, rng, np.float64, std=0.01)
        assert abs(w.mean()) < 1e-3
        assert abs(w.std() - 0.01) < 1e-3

    def test_he_scale(self, rng):
        fan_in = 128
        w = he_init((400, fan_in), fan_in, 400, rng, np.float64)
        assert abs(w.std() - np.sqrt(2.0 / fan_in)) < 0.01

    def test_xavier_bound(self, rng):
        fan_in, fan_out = 64, 32
        bound = np.sqrt(6.0 / (fan_in + fan_out))
        w = xavier_init((fan_out, fan_in), fan_in, fan_out, rng, np.float64)
        assert w.min() >= -bound
        assert w.max() <= bound

    def test_zeros(self, rng):
        assert np.all(zeros_init((3, 3), 3, 3, rng, np.float32) == 0)

    def test_dtype_respected(self, rng):
        assert he_init((4, 4), 4, 4, rng, np.float32).dtype == np.float32

    def test_resolve_by_name(self):
        assert resolve_initializer("he") is he_init
        assert resolve_initializer("xavier") is xavier_init

    def test_resolve_callable_passthrough(self):
        fn = lambda *a, **k: None  # noqa: E731
        assert resolve_initializer(fn) is fn

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown initializer"):
            resolve_initializer("bogus")
