"""Trainer: learning, history, schedules, callbacks, evaluation."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    ArrayDataset,
    Dense,
    Network,
    PlateauScheduler,
    ReLU,
    Trainer,
    error_rate,
    evaluate_topk,
)


def blob_dataset(n=200, seed=0):
    """Two well-separated Gaussian blobs — linearly separable."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(loc=[-2.0, -2.0], scale=0.5, size=(n // 2, 2))
    x1 = rng.normal(loc=[2.0, 2.0], scale=0.5, size=(n // 2, 2))
    x = np.concatenate([x0, x1]).astype(np.float64)
    y = np.concatenate([np.zeros(n // 2, dtype=int), np.ones(n // 2, dtype=int)])
    return ArrayDataset(x, y)


def mlp(seed=0):
    rng = np.random.default_rng(seed)
    return Network(
        [
            Dense(2, 16, dtype=np.float64, rng=rng, name="fc1"),
            ReLU(),
            Dense(16, 2, dtype=np.float64, rng=rng, name="fc2"),
        ],
        input_shape=(2,),
        name="mlp",
    )


class TestTraining:
    def test_learns_separable_problem(self):
        train = blob_dataset(200, seed=0)
        val = blob_dataset(80, seed=1)
        net = mlp()
        trainer = Trainer(net, SGD(net.params, lr=0.05, momentum=0.9), batch_size=16)
        history = trainer.fit(train, val, epochs=10)
        assert history.epochs[-1].val_error < 0.05

    def test_loss_decreases(self):
        train = blob_dataset(200)
        val = blob_dataset(40, seed=2)
        net = mlp()
        trainer = Trainer(net, SGD(net.params, lr=0.05, momentum=0.9), batch_size=16)
        history = trainer.fit(train, val, epochs=6)
        assert history.train_losses[-1] < history.train_losses[0]

    def test_history_records_every_epoch(self):
        train = blob_dataset(64)
        net = mlp()
        trainer = Trainer(net, SGD(net.params, lr=0.01))
        history = trainer.fit(train, train, epochs=4)
        assert [e.epoch for e in history.epochs] == [1, 2, 3, 4]
        assert all(np.isfinite(e.train_loss) for e in history.epochs)

    def test_best_epoch(self):
        train = blob_dataset(128)
        net = mlp()
        trainer = Trainer(net, SGD(net.params, lr=0.05, momentum=0.9))
        history = trainer.fit(train, train, epochs=5)
        best = history.best_epoch()
        assert best.val_error == min(history.val_errors)

    def test_callback_invoked(self):
        train = blob_dataset(64)
        net = mlp()
        calls = []
        trainer = Trainer(
            net,
            SGD(net.params, lr=0.01),
            epoch_callback=lambda tr, res: calls.append(res.epoch),
        )
        trainer.fit(train, train, epochs=3)
        assert calls == [1, 2, 3]

    def test_train_epoch_loss_is_exact_sample_mean(self):
        """A partial trailing batch must not skew the reported loss.

        With 50 samples at batch size 16 the last batch holds 2 samples;
        an unweighted mean of batch means would overweight them 8x.  The
        returned loss must equal the mean of per-sample losses over the
        epoch, reconstructed here by replaying the same shuffled batches
        through an identical network.
        """
        from repro.nn import BatchIterator, SoftmaxCrossEntropy

        train = blob_dataset(50, seed=6)  # 50 % 16 != 0
        net_a, net_b = mlp(seed=3), mlp(seed=3)
        trainer = Trainer(
            net_a,
            SGD(net_a.params, lr=1e-3, momentum=0.9),
            batch_size=16,
            rng=np.random.default_rng(9),
        )
        reported = trainer.train_epoch(train)

        # replay: same shuffle stream, same updates, accumulate per-sample mean
        loss = SoftmaxCrossEntropy()
        optimizer = SGD(net_b.params, lr=1e-3, momentum=0.9)
        total, count = 0.0, 0
        for x, y in BatchIterator(train, 16, shuffle=True, rng=np.random.default_rng(9)):
            batch_mean = loss.forward(net_b.forward(x, training=True), y)
            total += batch_mean * len(x)
            count += len(x)
            net_b.zero_grad()
            net_b.backward(loss.backward())
            optimizer.step()
        assert count == 50
        assert reported == total / count

    def test_plateau_scheduler_stops_training(self):
        train = blob_dataset(64)
        net = mlp()
        opt = SGD(net.params, lr=1e-6)
        scheduler = PlateauScheduler(opt, factor=0.1, patience=0, min_lr=1e-5)
        trainer = Trainer(net, opt, scheduler=scheduler)
        history = trainer.fit(train, train, epochs=50)
        assert len(history.epochs) < 50


class TestEvaluation:
    def test_error_rate_plus_accuracy_is_one(self):
        data = blob_dataset(50, seed=3)
        net = mlp()
        err = error_rate(net, data)
        acc = evaluate_topk(net, data, k=1)
        assert np.isclose(err + acc, 1.0)

    def test_topk_monotone_in_k(self):
        rng = np.random.default_rng(0)
        data = ArrayDataset(rng.normal(size=(40, 2)), rng.integers(0, 2, size=40))
        net = mlp()
        assert evaluate_topk(net, data, k=2) >= evaluate_topk(net, data, k=1)

    def test_topk_all_classes_is_perfect(self):
        data = blob_dataset(30, seed=4)
        net = mlp()
        assert evaluate_topk(net, data, k=2) == 1.0

    def test_batched_evaluation_matches_full(self):
        data = blob_dataset(60, seed=5)
        net = mlp()
        assert np.isclose(
            evaluate_topk(net, data, batch_size=7), evaluate_topk(net, data, batch_size=60)
        )

    def test_empty_history_best_epoch_raises(self):
        from repro.nn.trainer import TrainHistory

        with pytest.raises(ValueError):
            TrainHistory().best_epoch()
