"""Data augmentation: flips, shift-crops, trainer integration."""

import numpy as np
import pytest

from repro.nn.augment import Augmenter, random_horizontal_flip, random_shift_crop


class TestFlip:
    def test_shape_preserved(self, rng):
        x = rng.normal(size=(8, 3, 6, 6))
        assert random_horizontal_flip(x, rng).shape == x.shape

    def test_p_zero_is_identity(self, rng):
        x = rng.normal(size=(8, 3, 6, 6))
        assert np.array_equal(random_horizontal_flip(x, rng, p=0.0), x)

    def test_p_one_flips_all(self, rng):
        x = rng.normal(size=(4, 1, 2, 3))
        out = random_horizontal_flip(x, rng, p=1.0)
        assert np.array_equal(out, x[:, :, :, ::-1])

    def test_double_flip_is_identity(self, rng):
        x = rng.normal(size=(4, 1, 3, 3))
        out = random_horizontal_flip(random_horizontal_flip(x, np.random.default_rng(0), p=1.0),
                                     np.random.default_rng(1), p=1.0)
        assert np.array_equal(out, x)

    def test_original_untouched(self, rng):
        x = rng.normal(size=(4, 1, 3, 3))
        backup = x.copy()
        random_horizontal_flip(x, rng, p=1.0)
        assert np.array_equal(x, backup)

    def test_rejects_non_nchw(self, rng):
        with pytest.raises(ValueError):
            random_horizontal_flip(rng.normal(size=(4, 3)), rng)


class TestShiftCrop:
    def test_shape_preserved(self, rng):
        x = rng.normal(size=(8, 3, 6, 6))
        assert random_shift_crop(x, rng, pad=2).shape == x.shape

    def test_pad_zero_is_identity(self, rng):
        x = rng.normal(size=(4, 1, 5, 5))
        assert np.array_equal(random_shift_crop(x, rng, pad=0), x)

    def test_content_is_shifted_original(self, rng):
        """Every output is np.roll-like: the original content at an offset,
        with zeros filling the border."""
        x = np.arange(16.0).reshape(1, 1, 4, 4) + 1  # strictly positive
        out = random_shift_crop(x, np.random.default_rng(0), pad=1)
        # non-zero values of the output must be a subset of the input values
        nz = out[out > 0]
        assert set(nz.tolist()) <= set(x.ravel().tolist())

    def test_negative_pad_rejected(self, rng):
        with pytest.raises(ValueError):
            random_shift_crop(rng.normal(size=(1, 1, 4, 4)), rng, pad=-1)

    def test_shifts_vary_across_batch(self):
        x = np.arange(36.0).reshape(1, 1, 6, 6).repeat(32, axis=0)
        out = random_shift_crop(x, np.random.default_rng(3), pad=2)
        distinct = {out[i].tobytes() for i in range(32)}
        assert len(distinct) > 5


class TestAugmenter:
    def test_composition_runs(self, rng):
        aug = Augmenter(flip=True, crop_pad=2, rng=rng)
        x = rng.normal(size=(8, 3, 8, 8))
        assert aug(x).shape == x.shape

    def test_disabled_is_identity(self, rng):
        aug = Augmenter(flip=False, crop_pad=0)
        x = rng.normal(size=(4, 3, 8, 8))
        assert np.array_equal(aug(x), x)

    def test_reproducible_with_seed(self, rng):
        x = rng.normal(size=(8, 3, 8, 8))
        a = Augmenter(rng=np.random.default_rng(7))(x)
        b = Augmenter(rng=np.random.default_rng(7))(x)
        assert np.array_equal(a, b)

    def test_trainer_integration(self):
        """Trainer with augmentation still learns the blob problem."""
        from repro.nn import SGD, ArrayDataset, Conv2D, Dense, Flatten, Network, ReLU, Trainer

        rng = np.random.default_rng(0)
        # two classes distinguished by which half of the image is bright
        n = 120
        x = rng.normal(scale=0.1, size=(n, 1, 8, 8)).astype(np.float64)
        y = rng.integers(0, 2, size=n)
        x[y == 0, :, :, :4] += 1.0
        x[y == 1, :, :, 4:] += 1.0
        data = ArrayDataset(x, y)
        net = Network(
            [
                Conv2D(1, 4, 3, pad=1, dtype=np.float64, rng=rng),
                ReLU(),
                Flatten(),
                Dense(4 * 64, 2, dtype=np.float64, rng=rng),
            ],
            input_shape=(1, 8, 8),
        )
        trainer = Trainer(
            net,
            SGD(net.params, lr=0.05, momentum=0.9),
            batch_size=16,
            augment=Augmenter(flip=False, crop_pad=1, rng=rng),
        )
        history = trainer.fit(data, data, epochs=6)
        assert history.epochs[-1].val_error < 0.2
