"""SGD, momentum, weight decay, and the paper's LR schedules."""

import numpy as np
import pytest

from repro.nn.layers.base import Parameter
from repro.nn.optim import SGD, PlateauScheduler, StepScheduler


def make_param(value=1.0):
    p = Parameter(np.array([value]))
    p.grad = np.array([0.5])
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = make_param(1.0)
        opt = SGD([p], lr=0.1, momentum=0.0)
        opt.step()
        assert np.isclose(p.data[0], 1.0 - 0.1 * 0.5)

    def test_momentum_accumulates(self):
        p = make_param(0.0)
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.step()  # v = -0.05
        p.grad = np.array([0.5])
        opt.step()  # v = 0.9*(-0.05) - 0.05 = -0.095
        assert np.isclose(p.data[0], -0.05 - 0.095)

    def test_weight_decay(self):
        p = make_param(2.0)
        p.grad = np.array([0.0])
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.01)
        opt.step()
        assert np.isclose(p.data[0], 2.0 - 0.1 * 0.01 * 2.0)

    def test_zero_grad(self):
        p = make_param()
        SGD([p], lr=0.1).zero_grad()
        assert np.all(p.grad == 0.0)

    def test_invalid_hyperparams(self):
        p = make_param()
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)

    def test_converges_on_quadratic(self):
        """min (w - 3)^2: SGD with momentum should reach the optimum."""
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(200):
            p.grad = 2 * (p.data - 3.0)
            opt.step()
        assert abs(p.data[0] - 3.0) < 1e-3


class TestStepScheduler:
    def test_decays_every_step_size(self):
        p = make_param()
        opt = SGD([p], lr=1.0)
        sched = StepScheduler(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert np.isclose(opt.lr, 0.1)

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepScheduler(SGD([make_param()], lr=1.0), step_size=0)


class TestPlateauScheduler:
    def test_no_decay_while_improving(self):
        opt = SGD([make_param()], lr=1e-3)
        sched = PlateauScheduler(opt, patience=1)
        for metric in [0.5, 0.4, 0.3, 0.2]:
            sched.step(metric)
        assert opt.lr == 1e-3

    def test_decays_after_patience_exceeded(self):
        opt = SGD([make_param()], lr=1e-3)
        sched = PlateauScheduler(opt, factor=0.1, patience=2)
        sched.step(0.5)
        for _ in range(3):  # three non-improving epochs > patience of 2
            sched.step(0.5)
        assert np.isclose(opt.lr, 1e-4)

    def test_finishes_below_min_lr(self):
        """The paper stops training once lr < 1e-7."""
        opt = SGD([make_param()], lr=1e-3)
        sched = PlateauScheduler(opt, factor=0.1, patience=0, min_lr=1e-7)
        sched.step(0.5)
        for _ in range(10):
            sched.step(0.5)
            if sched.finished:
                break
        assert sched.finished
        assert opt.lr < 1e-7

    def test_improvement_resets_patience(self):
        opt = SGD([make_param()], lr=1e-3)
        sched = PlateauScheduler(opt, factor=0.1, patience=2)
        sched.step(0.5)
        sched.step(0.5)
        sched.step(0.5)
        sched.step(0.1)  # improvement: reset counter
        sched.step(0.1)
        sched.step(0.1)
        assert opt.lr == 1e-3

    def test_threshold_filters_noise(self):
        """Tiny improvements below the threshold do not count."""
        opt = SGD([make_param()], lr=1e-3)
        sched = PlateauScheduler(opt, factor=0.1, patience=1, threshold=1e-2)
        sched.step(0.500)
        sched.step(0.499)  # within threshold: counts as a bad epoch
        sched.step(0.498)
        assert np.isclose(opt.lr, 1e-4)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            PlateauScheduler(SGD([make_param()], lr=1.0), factor=1.5)
