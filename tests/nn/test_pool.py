"""Pooling: Caffe ceil-mode geometry, known values, gradient checks."""

import numpy as np
import pytest

from repro.nn.layers.pool import AvgPool2D, MaxPool2D, pool_output_size


class TestPoolOutputSize:
    def test_caffe_cifar10_chain(self):
        """cifar10_full pools 3/2 three times: 32 -> 16 -> 8 -> 4."""
        size = 32
        for expected in (16, 8, 4):
            size = pool_output_size(size, 3, 2, 0, ceil_mode=True)
            assert size == expected

    def test_alexnet_chain(self):
        """AlexNet pools 3/2: 55 -> 27 -> 13 -> 6 (exact divisions)."""
        for before, after in [(55, 27), (27, 13), (13, 6)]:
            assert pool_output_size(before, 3, 2, 0, ceil_mode=True) == after

    def test_floor_vs_ceil(self):
        assert pool_output_size(32, 3, 2, 0, ceil_mode=False) == 15
        assert pool_output_size(32, 3, 2, 0, ceil_mode=True) == 16

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            pool_output_size(1, 3, 2, 0, ceil_mode=False)


class TestMaxPoolForward:
    def test_known_values_2x2(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer = MaxPool2D(2, stride=2)
        assert layer.forward(x)[0, 0, 0, 0] == 4.0

    def test_overlapping_windows(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        layer = MaxPool2D(3, stride=1, ceil_mode=False)
        y = layer.forward(x)
        assert y.shape == (1, 1, 2, 2)
        assert np.allclose(y[0, 0], [[10, 11], [14, 15]])

    def test_ceil_mode_border_window_clips(self):
        """The last (partial) window must use only valid elements."""
        x = np.arange(36.0).reshape(1, 1, 6, 6)
        layer = MaxPool2D(3, stride=2, ceil_mode=True)
        y = layer.forward(x)
        # ceil((6-3)/2)+1 = 3; the last window starts at 4 and is clipped
        assert y.shape == (1, 1, 3, 3)
        assert y[0, 0, 2, 2] == 35.0  # bottom-right valid element

    def test_negative_inputs_not_masked_by_padding(self):
        """Implicit padding must not win the max over negative inputs."""
        x = np.full((1, 1, 5, 5), -3.0)
        layer = MaxPool2D(3, stride=2, ceil_mode=True)
        y = layer.forward(x)
        assert np.all(y == -3.0)

    def test_output_shape_matches_forward(self, rng):
        layer = MaxPool2D(3, stride=2)
        x = rng.normal(size=(2, 4, 9, 11))
        assert layer.forward(x).shape[1:] == layer.output_shape((4, 9, 11))


class TestMaxPoolBackward:
    def test_routes_gradient_to_argmax(self):
        x = np.array([[[[1.0, 5.0], [3.0, 2.0]]]])
        layer = MaxPool2D(2, stride=2)
        layer.forward(x)
        dx = layer.backward(np.array([[[[7.0]]]]))
        expected = np.array([[[[0.0, 7.0], [0.0, 0.0]]]])
        assert np.allclose(dx, expected)

    def test_overlapping_gradient_accumulates(self):
        """One input element that is the max of several windows gets the sum."""
        x = np.zeros((1, 1, 3, 3))
        x[0, 0, 1, 1] = 10.0  # max of all four 2x2 stride-1 windows
        layer = MaxPool2D(2, stride=1, ceil_mode=False)
        layer.forward(x)
        dx = layer.backward(np.ones((1, 1, 2, 2)))
        assert dx[0, 0, 1, 1] == 4.0

    def test_numerical_gradient(self, rng, gradcheck):
        # Distinct values to keep argmax stable under the epsilon probe.
        x = rng.permutation(36).astype(np.float64).reshape(1, 1, 6, 6)
        layer = MaxPool2D(3, stride=2)
        g = rng.normal(size=layer.forward(x).shape)
        dx = layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), x)
        assert np.allclose(dx, num, atol=1e-6)


class TestAvgPoolForward:
    def test_known_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer = AvgPool2D(2, stride=2)
        assert layer.forward(x)[0, 0, 0, 0] == 2.5

    def test_border_window_divides_by_valid_count(self):
        """Caffe-style: partial windows average only valid elements."""
        x = np.ones((1, 1, 5, 5))
        layer = AvgPool2D(3, stride=2, ceil_mode=True)
        y = layer.forward(x)
        # all-ones input must pool to all-ones everywhere, even at borders
        assert np.allclose(y, 1.0)

    def test_constant_preserved(self, rng):
        x = np.full((2, 3, 8, 8), 0.7, dtype=np.float64)
        layer = AvgPool2D(3, stride=2)
        assert np.allclose(layer.forward(x), 0.7)


class TestAvgPoolBackward:
    def test_uniform_distribution(self):
        x = np.zeros((1, 1, 2, 2))
        layer = AvgPool2D(2, stride=2)
        layer.forward(x)
        dx = layer.backward(np.array([[[[4.0]]]]))
        assert np.allclose(dx, 1.0)

    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 2), (3, 1)])
    def test_numerical_gradient(self, rng, gradcheck, kernel, stride):
        x = rng.normal(size=(1, 2, 6, 6))
        layer = AvgPool2D(kernel, stride=stride)
        g = rng.normal(size=layer.forward(x).shape)
        dx = layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), x)
        assert np.allclose(dx, num, atol=1e-6)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            AvgPool2D(2).backward(np.zeros((1, 1, 1, 1)))
