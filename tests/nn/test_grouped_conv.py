"""Grouped convolutions (AlexNet's two-column layers)."""

import numpy as np
import pytest

from repro.nn.layers.conv import Conv2D


class TestGroupedForward:
    def test_invalid_groups_rejected(self):
        with pytest.raises(ValueError):
            Conv2D(3, 8, 3, groups=2)  # 3 % 2 != 0
        with pytest.raises(ValueError):
            Conv2D(4, 6, 3, groups=4)  # 6 % 4 != 0
        with pytest.raises(ValueError):
            Conv2D(4, 4, 3, groups=0)

    def test_weight_shape_shrinks(self):
        layer = Conv2D(8, 16, 3, groups=2)
        assert layer.weight.data.shape == (16, 4, 3, 3)

    def test_groups_equal_channels_is_depthwise(self, rng):
        layer = Conv2D(4, 4, 1, groups=4, bias=False, dtype=np.float64)
        layer.weight.data = np.arange(1.0, 5.0).reshape(4, 1, 1, 1)
        x = rng.normal(size=(2, 4, 3, 3))
        y = layer.forward(x)
        for c in range(4):
            assert np.allclose(y[:, c], x[:, c] * (c + 1))

    def test_matches_two_independent_convs(self, rng):
        """groups=2 == two half-channel convolutions concatenated."""
        full = Conv2D(4, 6, 3, pad=1, groups=2, bias=False, dtype=np.float64, rng=rng)
        half_a = Conv2D(2, 3, 3, pad=1, bias=False, dtype=np.float64)
        half_b = Conv2D(2, 3, 3, pad=1, bias=False, dtype=np.float64)
        half_a.weight.data = full.weight.data[:3].copy()
        half_b.weight.data = full.weight.data[3:].copy()
        x = rng.normal(size=(2, 4, 5, 5))
        y = full.forward(x)
        ya = half_a.forward(x[:, :2])
        yb = half_b.forward(x[:, 2:])
        assert np.allclose(y, np.concatenate([ya, yb], axis=1))

    def test_groups_one_unchanged(self, rng):
        """groups=1 must behave exactly as the ungrouped implementation."""
        a = Conv2D(3, 4, 3, pad=1, groups=1, dtype=np.float64, rng=np.random.default_rng(0))
        b = Conv2D(3, 4, 3, pad=1, dtype=np.float64, rng=np.random.default_rng(0))
        x = rng.normal(size=(2, 3, 5, 5))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_macs_scale_inverse_with_groups(self):
        plain = Conv2D(8, 8, 3, pad=1, groups=1)
        grouped = Conv2D(8, 8, 3, pad=1, groups=2)
        assert plain.macs((8, 4, 4)) == 2 * grouped.macs((8, 4, 4))


class TestGroupedBackward:
    @pytest.mark.parametrize("groups", [2, 4])
    def test_grad_wrt_input(self, rng, gradcheck, groups):
        layer = Conv2D(4, 4, 3, pad=1, groups=groups, dtype=np.float64, rng=rng)
        x = rng.normal(size=(2, 4, 4, 4))
        g = rng.normal(size=layer.forward(x).shape)
        dx = layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), x)
        assert np.allclose(dx, num, atol=1e-6)

    def test_grad_wrt_weight_and_bias(self, rng, gradcheck):
        layer = Conv2D(4, 6, 3, pad=1, groups=2, dtype=np.float64, rng=rng)
        x = rng.normal(size=(2, 4, 4, 4))
        g = rng.normal(size=layer.forward(x).shape)
        layer.backward(g)
        num_w = gradcheck(lambda: float((layer.forward(x) * g).sum()), layer.weight.data)
        num_b = gradcheck(lambda: float((layer.forward(x) * g).sum()), layer.bias.data)
        assert np.allclose(layer.weight.grad, num_w, atol=1e-6)
        assert np.allclose(layer.bias.grad, num_b, atol=1e-6)


class TestGroupedDeployment:
    def test_grouped_conv_deploys_and_executes_bit_accurately(self, rng):
        from repro.core.mfdfp import MFDFPNetwork
        from repro.hw.accelerator import execute_deployed
        from repro.nn import Dense, Flatten, Network, ReLU

        net = Network(
            [
                Conv2D(4, 8, 3, pad=1, groups=2, dtype=np.float64, rng=rng, name="gconv"),
                ReLU(name="relu"),
                Flatten(name="flat"),
                Dense(8 * 36, 3, dtype=np.float64, rng=rng, name="fc"),
            ],
            input_shape=(4, 6, 6),
            name="gnet",
        )
        calib = rng.normal(size=(16, 4, 6, 6))
        mf = MFDFPNetwork.from_float(net, calib)
        mf.calibrate_bias_to_accumulator_grid()
        dep = mf.deploy()
        assert dep.ops[0].groups == 2
        x = rng.normal(size=(8, 4, 6, 6))
        codes = execute_deployed(dep, x)
        f = dep.ops[-1].out_frac
        sw = np.rint(mf.logits(x) * 2.0**f)
        assert np.array_equal(codes, sw)

    def test_grouped_alexnet_param_count(self):
        from repro.zoo import alexnet

        assert alexnet(grouped=True).param_count() == 60_965_224
