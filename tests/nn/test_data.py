"""Datasets, batching, splitting."""

import numpy as np
import pytest

from repro.nn.data import ArrayDataset, BatchIterator, train_val_split


def make_dataset(n=20, rng=None):
    rng = rng or np.random.default_rng(0)
    return ArrayDataset(rng.normal(size=(n, 3)), rng.integers(0, 4, size=n))


class TestArrayDataset:
    def test_length_and_indexing(self):
        ds = make_dataset(10)
        assert len(ds) == 10
        x, y = ds[3]
        assert x.shape == (3,)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 2)), np.zeros(4, dtype=int))

    def test_labels_must_be_1d(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 2)), np.zeros((5, 1), dtype=int))

    def test_num_classes(self):
        ds = ArrayDataset(np.zeros((4, 2)), np.array([0, 1, 2, 1]))
        assert ds.num_classes == 3

    def test_subset(self):
        ds = make_dataset(10)
        sub = ds.subset([0, 5])
        assert len(sub) == 2
        assert np.allclose(sub.x[1], ds.x[5])

    def test_sample_shape(self):
        ds = ArrayDataset(np.zeros((4, 3, 8, 8)), np.zeros(4, dtype=int))
        assert ds.sample_shape() == (3, 8, 8)


class TestTrainValSplit:
    def test_sizes(self, rng):
        train, val = train_val_split(make_dataset(100), val_fraction=0.2, rng=rng)
        assert len(train) == 80
        assert len(val) == 20

    def test_disjoint_and_complete(self, rng):
        ds = ArrayDataset(np.arange(50, dtype=float).reshape(50, 1), np.zeros(50, dtype=int))
        train, val = train_val_split(ds, 0.3, rng=rng)
        combined = np.sort(np.concatenate([train.x.ravel(), val.x.ravel()]))
        assert np.array_equal(combined, np.arange(50, dtype=float))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_val_split(make_dataset(), val_fraction=0.0)


class TestBatchIterator:
    def test_batch_count(self):
        it = BatchIterator(make_dataset(23), batch_size=8, shuffle=False)
        assert len(it) == 3
        batches = list(it)
        assert [len(b[0]) for b in batches] == [8, 8, 7]

    def test_drop_last(self):
        it = BatchIterator(make_dataset(23), batch_size=8, shuffle=False, drop_last=True)
        assert len(it) == 2
        assert all(len(x) == 8 for x, _ in it)

    def test_unshuffled_order(self):
        ds = ArrayDataset(np.arange(6, dtype=float).reshape(6, 1), np.arange(6))
        it = BatchIterator(ds, batch_size=4, shuffle=False)
        x, y = next(iter(it))
        assert np.array_equal(y, [0, 1, 2, 3])

    def test_shuffle_covers_everything(self, rng):
        ds = ArrayDataset(np.zeros((30, 1)), np.arange(30))
        it = BatchIterator(ds, batch_size=7, shuffle=True, rng=rng)
        seen = np.concatenate([y for _, y in it])
        assert np.array_equal(np.sort(seen), np.arange(30))

    def test_shuffle_changes_between_epochs(self):
        ds = ArrayDataset(np.zeros((64, 1)), np.arange(64))
        it = BatchIterator(ds, batch_size=64, shuffle=True, rng=np.random.default_rng(5))
        first = next(iter(it))[1].copy()
        second = next(iter(it))[1].copy()
        assert not np.array_equal(first, second)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchIterator(make_dataset(), batch_size=0)
