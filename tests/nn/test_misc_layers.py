"""Dropout, Flatten, and LocalResponseNorm."""

import numpy as np
import pytest

from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.norm import LocalResponseNorm


class TestDropout:
    def test_identity_in_eval_mode(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(4, 8))
        assert np.array_equal(layer.forward(x), x)

    def test_zero_probability_is_identity(self, rng):
        layer = Dropout(0.0, rng=rng)
        layer.train()
        x = rng.normal(size=(4, 8))
        assert np.array_equal(layer.forward(x), x)

    def test_training_zeroes_roughly_p_fraction(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.training = True
        x = np.ones((200, 200))
        y = layer.forward(x)
        zero_fraction = float((y == 0).mean())
        assert 0.45 < zero_fraction < 0.55

    def test_inverted_scaling_preserves_expectation(self, rng):
        layer = Dropout(0.3, rng=rng)
        layer.training = True
        x = np.ones((300, 300))
        y = layer.forward(x)
        assert abs(y.mean() - 1.0) < 0.02

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.training = True
        x = np.ones((10, 10))
        y = layer.forward(x)
        dx = layer.backward(np.ones_like(x))
        assert np.array_equal(dx == 0, y == 0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestFlatten:
    def test_shape(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 5))
        assert layer.forward(x).shape == (2, 60)

    def test_backward_restores_shape(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 5))
        y = layer.forward(x)
        dx = layer.backward(np.ones_like(y))
        assert dx.shape == x.shape

    def test_roundtrip_values(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 2, 2))
        g = rng.normal(size=(2, 12))
        layer.forward(x)
        assert np.allclose(layer.backward(g).ravel(), g.ravel())

    def test_output_shape(self):
        assert Flatten().output_shape((3, 4, 4)) == (48,)


class TestLocalResponseNorm:
    def test_identity_at_zero_alpha(self, rng):
        layer = LocalResponseNorm(local_size=5, alpha=0.0, beta=0.75, k=1.0)
        x = rng.normal(size=(2, 8, 4, 4))
        assert np.allclose(layer.forward(x), x)

    def test_normalizes_large_activations(self):
        layer = LocalResponseNorm(local_size=3, alpha=1.0, beta=0.75, k=1.0)
        x = np.zeros((1, 3, 1, 1))
        x[0, 1] = 10.0
        y = layer.forward(x)
        assert abs(y[0, 1, 0, 0]) < 10.0

    def test_window_clipped_at_boundaries(self, rng):
        """Channel 0's window only sees channels 0..half."""
        layer = LocalResponseNorm(local_size=3, alpha=1.0, beta=1.0, k=1.0)
        x = np.zeros((1, 4, 1, 1))
        x[0, 0] = 2.0
        x[0, 3] = 5.0  # far from channel 0: must not affect it
        y = layer.forward(x)
        expected = 2.0 / (1.0 + (1.0 / 3.0) * 4.0)
        assert np.isclose(y[0, 0, 0, 0], expected)

    def test_even_local_size_rejected(self):
        with pytest.raises(ValueError):
            LocalResponseNorm(local_size=4)

    def test_numerical_gradient(self, rng, gradcheck):
        layer = LocalResponseNorm(local_size=3, alpha=0.3, beta=0.75, k=2.0)
        x = rng.normal(size=(2, 5, 3, 3))
        g = rng.normal(size=x.shape)
        layer.forward(x)
        dx = layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), x)
        assert np.allclose(dx, num, atol=1e-5)

    def test_output_shape(self):
        assert LocalResponseNorm().output_shape((8, 4, 4)) == (8, 4, 4)
