"""Network container: execution, parameters, persistence, introspection."""

import numpy as np
import pytest

from repro.nn import Conv2D, Dense, Flatten, Network, ReLU
from repro.nn.loss import SoftmaxCrossEntropy


def tiny_net(dtype=np.float64, rng=None):
    rng = rng or np.random.default_rng(0)
    return Network(
        [
            Conv2D(1, 4, 3, pad=1, dtype=dtype, rng=rng, name="conv1"),
            ReLU(name="relu1"),
            Flatten(name="flat"),
            Dense(4 * 4 * 4, 3, dtype=dtype, rng=rng, name="fc"),
        ],
        input_shape=(1, 4, 4),
        name="tiny",
    )


class TestExecution:
    def test_forward_shape(self, rng):
        net = tiny_net()
        assert net.forward(rng.normal(size=(2, 1, 4, 4))).shape == (2, 3)

    def test_predict_returns_argmax(self, rng):
        net = tiny_net()
        x = rng.normal(size=(5, 1, 4, 4))
        assert np.array_equal(net.predict(x), net.logits(x).argmax(axis=1))

    def test_training_flag_propagates(self, rng):
        net = tiny_net()
        net.forward(rng.normal(size=(1, 1, 4, 4)), training=True)
        assert all(layer.training for layer in net.layers)
        net.forward(rng.normal(size=(1, 1, 4, 4)), training=False)
        assert not any(layer.training for layer in net.layers)

    def test_input_quantizer_applied(self, rng):
        net = tiny_net()
        x = rng.normal(size=(1, 1, 4, 4))
        y_plain = net.forward(x)
        net.input_quantizer = lambda v: np.zeros_like(v)
        y_quant = net.forward(x)
        assert not np.allclose(y_plain, y_quant)

    def test_end_to_end_gradient(self, rng, gradcheck):
        """Full-network numerical gradient check through conv+relu+dense."""
        net = tiny_net()
        x = rng.normal(size=(2, 1, 4, 4)) + 0.3
        target = np.array([0, 2])
        loss = SoftmaxCrossEntropy()

        def f():
            return loss.forward(net.forward(x), target)

        f()
        net.zero_grad()
        net.backward(loss.backward())
        for p in net.params:
            num = gradcheck(f, p.data)
            assert np.allclose(p.grad, num, atol=1e-5), p.name


class TestParameters:
    def test_param_count(self):
        net = tiny_net()
        assert net.param_count() == (4 * 1 * 9 + 4) + (3 * 64 + 3)

    def test_unique_param_names(self):
        net = tiny_net()
        names = [p.name for p in net.params]
        assert len(names) == len(set(names))

    def test_duplicate_layer_names_renamed(self):
        net = Network([ReLU(name="act"), ReLU(name="act")])
        assert net.layers[0].name != net.layers[1].name

    def test_get_set_weights_roundtrip(self, rng):
        net = tiny_net()
        other = tiny_net(rng=np.random.default_rng(99))
        x = rng.normal(size=(1, 1, 4, 4))
        assert not np.allclose(net.logits(x), other.logits(x))
        other.set_weights(net.get_weights())
        assert np.allclose(net.logits(x), other.logits(x))

    def test_set_weights_rejects_mismatched_names(self):
        net = tiny_net()
        with pytest.raises(KeyError):
            net.set_weights({"bogus": np.zeros(1)})

    def test_set_weights_rejects_wrong_shape(self):
        net = tiny_net()
        weights = net.get_weights()
        key = next(iter(weights))
        weights[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.set_weights(weights)

    def test_save_load(self, tmp_path, rng):
        net = tiny_net()
        path = tmp_path / "weights.npz"
        net.save(path)
        other = tiny_net(rng=np.random.default_rng(99))
        other.load(path)
        x = rng.normal(size=(1, 1, 4, 4))
        assert np.allclose(net.logits(x), other.logits(x))

    def test_clone_is_independent(self, rng):
        net = tiny_net()
        clone = net.clone()
        x = rng.normal(size=(1, 1, 4, 4))
        assert np.allclose(net.logits(x), clone.logits(x))
        clone.params[0].data += 1.0
        assert not np.allclose(net.logits(x), clone.logits(x))

    def test_zero_grad(self, rng):
        net = tiny_net()
        loss = SoftmaxCrossEntropy()
        loss.forward(net.forward(rng.normal(size=(1, 1, 4, 4))), np.array([0]))
        net.backward(loss.backward())
        net.zero_grad()
        assert all(np.all(p.grad == 0) for p in net.params)


class TestIntrospection:
    def test_layer_lookup(self):
        net = tiny_net()
        assert net.layer("conv1").name == "conv1"
        with pytest.raises(KeyError):
            net.layer("missing")

    def test_layer_shapes(self):
        net = tiny_net()
        shapes = dict(net.layer_shapes())
        assert shapes["conv1"] == (4, 4, 4)
        assert shapes["flat"] == (64,)
        assert shapes["fc"] == (3,)

    def test_layer_shapes_requires_input_shape(self):
        net = Network([ReLU()])
        with pytest.raises(ValueError):
            net.layer_shapes()

    def test_summary_contains_totals(self):
        net = tiny_net()
        text = net.summary()
        assert "tiny" in text
        assert str(net.param_count()) in text

    def test_compute_layers(self):
        net = tiny_net()
        assert [l.name for l in net.compute_layers()] == ["conv1", "fc"]
