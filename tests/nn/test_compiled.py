"""Compiled training fast path: bit-identity, caching, fallback, profiling.

Every test here holds the fast path to the only contract that matters:
``Trainer(compiled=True)`` must be *exactly* the eager trainer, faster —
same loss curve, same validation errors, same final master weights, to
the last bit, for every layer type, hook configuration, dtype, and batch
geometry.
"""

import numpy as np
import pytest

from repro.core.mfdfp import MFDFPNetwork
from repro.nn import (
    SGD,
    ArrayDataset,
    AvgPool2D,
    CompiledTrainer,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    Network,
    ReLU,
    Tanh,
    Trainer,
    error_rate,
    format_profile,
)


def tiny_data(n=96, seed=0, size=8, classes=4):
    rng = np.random.default_rng(seed)
    x = rng.normal(scale=0.5, size=(n, 3, size, size)).astype(np.float32)
    y = rng.integers(0, classes, size=n)
    return ArrayDataset(x, y)


def tiny_net(seed=0, size=8, classes=4, dropout=False, lrn=False, tanh=False):
    rng = np.random.default_rng(seed)
    layers = [
        Conv2D(3, 4, 3, pad=1, rng=rng, name="c1"),
        ReLU(name="r1"),
        MaxPool2D(2, stride=2, name="p1"),
    ]
    if lrn:
        layers.append(LocalResponseNorm(local_size=3, name="n1"))
    layers += [
        Conv2D(4, 4, 3, pad=1, rng=rng, name="c2"),
        Tanh(name="t1") if tanh else ReLU(name="r2"),
        AvgPool2D(2, stride=2, name="p2"),
    ]
    if dropout:
        layers.append(Dropout(0.3, rng=np.random.default_rng(7), name="d1"))
    layers += [
        Flatten(name="fl"),
        Dense(4 * (size // 4) ** 2, classes, rng=rng, name="fc"),
    ]
    return Network(layers, input_shape=(3, size, size), name="tiny")


def fit_both(make_net, train, val, epochs=3, batch_size=32, lr=0.05, mfdfp=False, **mf_kwargs):
    """Train eager and compiled from identical state; return both runs."""
    runs = {}
    for compiled in (False, True):
        net = make_net()
        if mfdfp:
            model = MFDFPNetwork.from_float(net, train.x[:32], **mf_kwargs)
            params, target = model.params, model.net
        else:
            params, target = net.params, net
        trainer = Trainer(
            target,
            SGD(params, lr=lr, momentum=0.9),
            batch_size=batch_size,
            rng=np.random.default_rng(11),
            compiled=compiled,
        )
        history = trainer.fit(train, val, epochs=epochs)
        runs[compiled] = (history, target.get_weights(), trainer)
    return runs


def assert_identical(runs):
    h_eager, w_eager, _ = runs[False]
    h_fast, w_fast, _ = runs[True]
    assert h_eager.train_losses == h_fast.train_losses
    assert h_eager.val_errors == h_fast.val_errors
    assert set(w_eager) == set(w_fast)
    for name in w_eager:
        assert np.array_equal(w_eager[name], w_fast[name]), f"{name} drifted"


class TestBitIdentity:
    def test_float_net(self):
        train, val = tiny_data(96, seed=0), tiny_data(40, seed=1)
        assert_identical(fit_both(tiny_net, train, val))

    def test_partial_trailing_batch(self):
        train, val = tiny_data(50, seed=2), tiny_data(30, seed=3)  # 50 % 32 != 0
        runs = fit_both(tiny_net, train, val, batch_size=32)
        assert_identical(runs)
        executor = runs[True][2].executor
        assert executor.plan_count() >= 2  # full batch + remainder plans

    def test_dropout_rng_replay(self):
        train, val = tiny_data(64, seed=4), tiny_data(32, seed=5)
        assert_identical(fit_both(lambda: tiny_net(dropout=True), train, val))

    def test_mfdfp_quantized_training(self):
        train, val = tiny_data(96, seed=6), tiny_data(40, seed=7)
        assert_identical(fit_both(tiny_net, train, val, mfdfp=True, lr=0.01))

    def test_mfdfp_stochastic_rounding_not_cached(self):
        train, val = tiny_data(64, seed=8), tiny_data(32, seed=9)
        runs = {}
        for compiled in (False, True):
            net = tiny_net()
            model = MFDFPNetwork.from_float(
                net,
                train.x[:32],
                weight_mode="stochastic",
                rng=np.random.default_rng(123),
            )
            trainer = Trainer(
                model.net,
                SGD(model.params, lr=0.01, momentum=0.9),
                batch_size=32,
                rng=np.random.default_rng(11),
                compiled=compiled,
            )
            history = trainer.fit(train, val, epochs=2)
            runs[compiled] = (history, model.net.get_weights(), trainer)
        assert_identical(runs)
        cache = runs[True][2].executor.quant_cache
        assert cache.hits == 0  # stochastic hooks must never be served from cache

    def test_float64_net(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 6)).astype(np.float64)
        y = rng.integers(0, 3, size=40)
        train = ArrayDataset(x, y)

        def make():
            r = np.random.default_rng(1)
            return Network(
                [Dense(6, 8, dtype=np.float64, rng=r), ReLU(), Dense(8, 3, dtype=np.float64, rng=r)],
                input_shape=(6,),
            )

        assert_identical(fit_both(make, train, train, epochs=3, batch_size=16))

    def test_unsupported_layers_delegate(self):
        train, val = tiny_data(64, seed=10), tiny_data(32, seed=11)
        runs = fit_both(lambda: tiny_net(lrn=True, tanh=True), train, val)
        assert_identical(runs)
        executor = runs[True][2].executor
        plan = next(iter(executor._plans.values()))
        assert "n1" in plan.delegated_layers
        assert "t1" in plan.delegated_layers

    def test_evaluate_error_matches_error_rate(self):
        train, val = tiny_data(64, seed=12), tiny_data(48, seed=13)
        runs = fit_both(tiny_net, train, val, epochs=1)
        trainer = runs[True][2]
        assert trainer.evaluate_error(val) == error_rate(trainer.net, val)


class TestExecutor:
    def test_forward_matches_network(self):
        net = tiny_net()
        executor = CompiledTrainer(net)
        x = tiny_data(20, seed=14).x
        first = executor.forward(x)  # trace batch (eager)
        again = executor.forward(x)  # compiled batch
        assert np.array_equal(first, net.forward(x))
        assert np.array_equal(again, net.forward(x))

    def test_backward_before_forward_raises(self):
        executor = CompiledTrainer(tiny_net())
        with pytest.raises(RuntimeError):
            executor.backward(np.zeros((4, 4)))

    def test_hook_mutation_invalidates_plans(self):
        from repro.core.dfp import DFPFormat, DFPQuantizer

        net = tiny_net()
        executor = CompiledTrainer(net)
        x = tiny_data(16, seed=15).x
        executor.forward(x)
        executor.forward(x)
        assert executor.plan_count() == 1
        net.layers[-1].output_quantizer = DFPQuantizer(DFPFormat(8, 4))
        out = executor.forward(x)  # signature changed: recompile, stay correct
        assert np.array_equal(out, net.forward(x))

    def test_quantized_weight_cache_invalidated_by_step(self):
        train = tiny_data(32, seed=16)
        net = tiny_net()
        model = MFDFPNetwork.from_float(net, train.x[:16])
        trainer = Trainer(
            model.net,
            SGD(model.params, lr=0.01, momentum=0.9),
            batch_size=16,
            rng=np.random.default_rng(0),
            compiled=True,
        )
        trainer.fit(train, train, epochs=2)
        cache = trainer.executor.quant_cache
        assert cache.misses > 0
        # repeated forwards with unchanged masters are pure cache hits
        trainer.executor.forward(train.x[:16], training=False)
        hits, misses = cache.hits, cache.misses
        trainer.executor.forward(train.x[:16], training=False)
        assert cache.misses == misses and cache.hits > hits
        # snapshot equals the eager per-layer requantization, bitwise
        snapshot = trainer.quantized_weights()
        for layer in model.net.layers:
            w = layer.effective_weight()
            if w is not None:
                assert np.array_equal(snapshot[layer.name], w)
        # an optimizer step rebinds masters: next forward must requantize
        misses = cache.misses
        trainer.optimizer.step()
        trainer.executor.forward(train.x[:16], training=False)
        assert cache.misses > misses

    def test_param_grads_are_not_live_workspace_views(self):
        """Eager backward hands out fresh grad arrays; compiled must too.

        A caller keeping ``param.grad`` across steps must not see it
        silently mutate when the next batch's backward runs.
        """
        train = tiny_data(64, seed=30)
        net = tiny_net()
        trainer = Trainer(
            net,
            SGD(net.params, lr=0.01, momentum=0.9),
            batch_size=16,
            rng=np.random.default_rng(0),
            compiled=True,
        )
        trainer.fit(train, train, epochs=1)  # plans built, past the trace
        loss = trainer.loss
        x, y = train.x[:16], train.y[:16]
        loss.forward(trainer.forward_batch(x, training=True), y)
        trainer.backward_batch(loss.backward())
        kept = {p.name: (p.grad, p.grad.copy()) for p in net.params}
        x2, y2 = train.x[16:32], train.y[16:32]
        loss.forward(trainer.forward_batch(x2, training=True), y2)
        trainer.backward_batch(loss.backward())
        for name, (ref, snapshot) in kept.items():
            assert np.array_equal(ref, snapshot), f"{name}.grad mutated in place"

    def test_dropout_rate_mutation_tracked(self):
        """Changing layer.p mid-training must behave exactly as eager."""
        net = tiny_net(dropout=True)
        executor = CompiledTrainer(net)
        x = tiny_data(16, seed=31).x
        executor.forward(x, training=True)  # trace
        executor.forward(x, training=True)  # compiled
        drop = net.layer("d1")
        drop.p = 0.7
        eager_net = tiny_net(dropout=True)
        eager_net.layer("d1").p = 0.7
        eager_net.layer("d1").rng = np.random.default_rng(42)
        drop.rng = np.random.default_rng(42)
        assert np.array_equal(
            executor.forward(x, training=True), eager_net.forward(x, training=True)
        )

    def test_profile_rows(self):
        train, val = tiny_data(48, seed=17), tiny_data(24, seed=18)
        net = tiny_net()
        trainer = Trainer(
            net,
            SGD(net.params, lr=0.05, momentum=0.9),
            batch_size=16,
            rng=np.random.default_rng(0),
            compiled=True,
            profile=True,
        )
        trainer.fit(train, val, epochs=2)
        rows = trainer.profile_rows()
        assert [r["layer"] for r in rows] == [layer.name for layer in net.layers]
        assert any(r["forward_s"] > 0 for r in rows)
        assert any(r["backward_s"] > 0 for r in rows)
        table = format_profile(rows)
        assert "c1" in table and "total" in table

    def test_eager_profile_rows(self):
        train, val = tiny_data(48, seed=19), tiny_data(24, seed=20)
        net = tiny_net()
        trainer = Trainer(
            net,
            SGD(net.params, lr=0.05, momentum=0.9),
            batch_size=16,
            rng=np.random.default_rng(0),
            compiled=False,
            profile=True,
        )
        history = trainer.fit(train, val, epochs=1)
        rows = trainer.profile_rows()
        assert [r["layer"] for r in rows] == [layer.name for layer in net.layers]
        # profiling must not change the numbers: same curve as plain eager
        net2 = tiny_net()
        plain = Trainer(
            net2,
            SGD(net2.params, lr=0.05, momentum=0.9),
            batch_size=16,
            rng=np.random.default_rng(0),
            compiled=False,
        ).fit(train, val, epochs=1)
        assert history.train_losses == plain.train_losses
        assert history.val_errors == plain.val_errors


class TestPipelineIntegration:
    def test_run_algorithm1_compiled_bit_identical(self):
        from repro.core import MFDFPConfig, run_algorithm1

        train, val = tiny_data(64, seed=21), tiny_data(32, seed=22)
        results = {}
        for compiled in (False, True):
            net = tiny_net()
            Trainer(
                net,
                SGD(net.params, lr=0.05, momentum=0.9),
                batch_size=16,
                rng=np.random.default_rng(1),
                compiled=False,
            ).fit(train, val, epochs=1)
            config = MFDFPConfig(
                phase1_epochs=2, phase2_epochs=2, lr=0.01, batch_size=16, compiled=compiled
            )
            results[compiled] = run_algorithm1(
                net, train, val, train.x[:16], config, rng=np.random.default_rng(5)
            )
        eager, fast = results[False], results[True]
        assert eager.phase1.train_losses == fast.phase1.train_losses
        assert eager.phase1.val_errors == fast.phase1.val_errors
        assert eager.phase2.train_losses == fast.phase2.train_losses
        assert eager.phase2.val_errors == fast.phase2.val_errors
        for name, w in eager.mfdfp.net.get_weights().items():
            assert np.array_equal(w, fast.mfdfp.net.get_weights()[name])

    def test_phase1_snapshots_fused(self):
        from repro.core import MFDFPConfig, run_algorithm1

        train, val = tiny_data(48, seed=23), tiny_data(24, seed=24)
        net = tiny_net()
        config = MFDFPConfig(phase1_epochs=2, phase2_epochs=1, lr=0.01, batch_size=16)
        result = run_algorithm1(net, train, val, train.x[:16], config)
        assert result.phase1_snapshots is not None
        assert len(result.phase1_snapshots) == len(result.phase1.epochs)
        # the last snapshot is the quantized view of the weights as they
        # stood at the end of phase 1 -- phase 2 then trains further, so
        # snapshots must be copies, not live views
        last = result.phase1_snapshots[-1]
        assert set(last) == {
            layer.name
            for layer in result.mfdfp.net.layers
            if layer.effective_weight() is not None
        }
        for name, arr in last.items():
            assert arr.flags.owndata or arr.base is None

    def test_stochastic_mode_never_snapshots(self):
        """Snapshotting through a stochastic hook would consume RNG state
        and change the training trajectory; Algorithm 1 must not collect
        snapshots in that mode."""
        from repro.core import MFDFPConfig, run_algorithm1

        train, val = tiny_data(32, seed=27), tiny_data(16, seed=28)
        config = MFDFPConfig(
            phase1_epochs=1, phase2_epochs=1, lr=0.01, batch_size=16,
            weight_mode="stochastic",
        )
        result = run_algorithm1(
            tiny_net(), train, val, train.x[:16], config, rng=np.random.default_rng(3)
        )
        assert result.phase1_snapshots is None

    def test_snapshots_disabled(self):
        from repro.core import MFDFPConfig, run_algorithm1

        train, val = tiny_data(32, seed=25), tiny_data(16, seed=26)
        config = MFDFPConfig(
            phase1_epochs=1, phase2_epochs=1, lr=0.01, batch_size=16, snapshot_phase1=False
        )
        result = run_algorithm1(tiny_net(), train, val, train.x[:16], config)
        assert result.phase1_snapshots is None
