"""Dense layer: values, gradients, hooks."""

import numpy as np
import pytest

from repro.nn.layers.dense import Dense


class TestDenseForward:
    def test_known_values(self):
        layer = Dense(2, 2, dtype=np.float64)
        layer.weight.data = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer.bias.data = np.array([0.5, -0.5])
        x = np.array([[1.0, 1.0]])
        assert np.allclose(layer.forward(x), [[3.5, 6.5]])

    def test_batch_independence(self, rng):
        layer = Dense(4, 3, dtype=np.float64, rng=rng)
        x = rng.normal(size=(5, 4))
        y = layer.forward(x)
        y0 = layer.forward(x[:1])
        assert np.allclose(y[0], y0[0])

    def test_rejects_non_2d(self, rng):
        layer = Dense(4, 3)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(2, 2, 2)))

    def test_no_bias(self):
        layer = Dense(3, 2, bias=False, dtype=np.float64)
        assert layer.bias is None
        x = np.zeros((1, 3))
        assert np.allclose(layer.forward(x), 0.0)

    def test_output_shape_flattens(self):
        layer = Dense(12, 5)
        assert layer.output_shape((3, 2, 2)) == (5,)
        with pytest.raises(ValueError):
            layer.output_shape((3, 2, 3))

    def test_macs(self):
        assert Dense(1024, 10).macs((1024,)) == 10240


class TestDenseBackward:
    def test_grad_wrt_input(self, rng, gradcheck):
        layer = Dense(4, 3, dtype=np.float64, rng=rng)
        x = rng.normal(size=(2, 4))
        g = rng.normal(size=(2, 3))
        layer.forward(x)
        dx = layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), x)
        assert np.allclose(dx, num, atol=1e-6)

    def test_grad_wrt_weight_and_bias(self, rng, gradcheck):
        layer = Dense(4, 3, dtype=np.float64, rng=rng)
        x = rng.normal(size=(2, 4))
        g = rng.normal(size=(2, 3))
        layer.forward(x)
        layer.backward(g)
        num_w = gradcheck(lambda: float((layer.forward(x) * g).sum()), layer.weight.data)
        num_b = gradcheck(lambda: float((layer.forward(x) * g).sum()), layer.bias.data)
        assert np.allclose(layer.weight.grad, num_w, atol=1e-6)
        assert np.allclose(layer.bias.grad, num_b, atol=1e-6)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2).backward(np.zeros((1, 2)))


class TestDenseHooks:
    def test_weight_quantizer_is_forward_only(self):
        layer = Dense(1, 1, bias=False, dtype=np.float64)
        layer.weight.data = np.array([[0.6]])
        layer.weight_quantizer = lambda w: np.sign(w)
        y = layer.forward(np.array([[2.0]]))
        assert y[0, 0] == 2.0
        assert layer.weight.data[0, 0] == 0.6

    def test_effective_weight(self):
        layer = Dense(1, 1, bias=False, dtype=np.float64)
        layer.weight.data = np.array([[0.6]])
        assert layer.effective_weight()[0, 0] == 0.6
        layer.weight_quantizer = lambda w: np.sign(w)
        assert layer.effective_weight()[0, 0] == 1.0
