"""Loss functions: softmax, cross entropy, gradients."""

import numpy as np
import pytest

from repro.nn.loss import (
    MeanSquaredError,
    SoftmaxCrossEntropy,
    log_softmax,
    one_hot,
    softmax,
)


class TestSoftmax:
    def test_sums_to_one(self, rng):
        p = softmax(rng.normal(size=(5, 10)))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_invariant_to_shift(self, rng):
        z = rng.normal(size=(3, 4))
        assert np.allclose(softmax(z), softmax(z + 100.0))

    def test_numerically_stable_for_large_logits(self):
        z = np.array([[1000.0, 0.0]])
        p = softmax(z)
        assert np.all(np.isfinite(p))
        assert np.isclose(p[0, 0], 1.0)

    def test_log_softmax_consistent(self, rng):
        z = rng.normal(size=(4, 6))
        assert np.allclose(np.exp(log_softmax(z)), softmax(z))

    def test_uniform_logits(self):
        p = softmax(np.zeros((1, 4)))
        assert np.allclose(p, 0.25)


class TestOneHot:
    def test_values(self):
        oh = one_hot(np.array([0, 2]), 3)
        assert np.allclose(oh, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_dtype_is_explicit_float64(self):
        """Regression (dtype-discipline): the target matrix names its
        dtype instead of riding numpy's creation default, so the loss
        math stays float64 regardless of numpy configuration."""
        oh = one_hot(np.array([1, 0], dtype=np.int32), 2)
        assert oh.dtype == np.float64


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0, 0.0]])
        assert loss.forward(logits, np.array([0])) < 1e-6

    def test_uniform_prediction_log_k(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((2, 10))
        assert np.isclose(loss.forward(logits, np.array([3, 7])), np.log(10))

    def test_gradient_formula(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(4, 5))
        target = np.array([0, 1, 2, 3])
        loss.forward(logits, target)
        grad = loss.backward()
        expected = softmax(logits)
        expected[np.arange(4), target] -= 1.0
        assert np.allclose(grad, expected / 4)

    def test_gradient_numerical(self, rng, gradcheck):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 4))
        target = np.array([1, 0, 3])
        loss.forward(logits, target)
        grad = loss.backward()
        num = gradcheck(lambda: loss.forward(logits, target), logits)
        assert np.allclose(grad, num, atol=1e-6)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(4, 6))
        loss.forward(logits, np.array([0, 1, 2, 3]))
        assert np.allclose(loss.backward().sum(axis=1), 0.0, atol=1e-12)


class TestMeanSquaredError:
    def test_zero_at_match(self, rng):
        loss = MeanSquaredError()
        x = rng.normal(size=(3, 3))
        assert loss.forward(x, x.copy()) == 0.0

    def test_gradient_numerical(self, rng, gradcheck):
        loss = MeanSquaredError()
        pred = rng.normal(size=(2, 3))
        target = rng.normal(size=(2, 3))
        loss.forward(pred, target)
        grad = loss.backward()
        num = gradcheck(lambda: loss.forward(pred, target), pred)
        assert np.allclose(grad, num, atol=1e-6)
