"""Activation layers: values and gradients."""

import numpy as np
import pytest

from repro.nn.layers.activations import ReLU, Sigmoid, Tanh


class TestReLU:
    def test_values(self):
        x = np.array([-2.0, -0.0, 0.5, 3.0])
        assert np.allclose(ReLU().forward(x), [0.0, 0.0, 0.5, 3.0])

    def test_gradient_mask(self):
        layer = ReLU()
        x = np.array([-1.0, 2.0])
        layer.forward(x)
        assert np.allclose(layer.backward(np.array([5.0, 5.0])), [0.0, 5.0])

    def test_zero_input_gets_zero_gradient(self):
        layer = ReLU()
        layer.forward(np.array([0.0]))
        assert layer.backward(np.array([1.0]))[0] == 0.0

    def test_numerical_gradient(self, rng, gradcheck):
        layer = ReLU()
        x = rng.normal(size=(3, 4)) + 0.1  # keep away from the kink
        x = np.where(np.abs(x) < 0.05, 0.2, x)
        g = rng.normal(size=(3, 4))
        layer.forward(x)
        dx = layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), x)
        assert np.allclose(dx, num, atol=1e-6)

    def test_shape_preserved(self):
        assert ReLU().output_shape((3, 4, 4)) == (3, 4, 4)


class TestTanh:
    def test_values(self):
        x = np.array([0.0, 100.0, -100.0])
        y = Tanh().forward(x)
        assert np.allclose(y, [0.0, 1.0, -1.0])

    def test_numerical_gradient(self, rng, gradcheck):
        layer = Tanh()
        x = rng.normal(size=(2, 5))
        g = rng.normal(size=(2, 5))
        layer.forward(x)
        dx = layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), x)
        assert np.allclose(dx, num, atol=1e-6)


class TestSigmoid:
    def test_values(self):
        x = np.array([0.0])
        assert np.allclose(Sigmoid().forward(x), [0.5])

    def test_extreme_inputs_stable(self):
        x = np.array([-1000.0, 1000.0])
        y = Sigmoid().forward(x)
        assert np.all(np.isfinite(y))
        assert np.allclose(y, [0.0, 1.0])

    def test_numerical_gradient(self, rng, gradcheck):
        layer = Sigmoid()
        x = rng.normal(size=(2, 5))
        g = rng.normal(size=(2, 5))
        layer.forward(x)
        dx = layer.backward(g)
        num = gradcheck(lambda: float((layer.forward(x) * g).sum()), x)
        assert np.allclose(dx, num, atol=1e-6)


class TestOutputQuantizerHook:
    @pytest.mark.parametrize("cls", [ReLU, Tanh, Sigmoid])
    def test_hook_applied(self, cls):
        layer = cls()
        layer.output_quantizer = lambda y: np.zeros_like(y)
        assert np.allclose(layer.forward(np.array([1.0, 2.0])), 0.0)
