"""Batched engine: bit-exactness vs the reference path, registry, shapes."""

import numpy as np
import pytest

from repro.core import MFDFPNetwork
from repro.core.engine import (
    OP_REGISTRY,
    SHIFT_LUT,
    BatchedEngine,
    execute_deployed,
    shift_weight_ints,
)
from repro.core.mfdfp import DeployedLayer
from repro.core.pow2 import pow2_code_fields
from repro.hw import Accelerator, AcceleratorConfig
from repro.nn.layers import AvgPool2D, Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.network import Network


def _deploy(net, rng, calib_n=32):
    calib = rng.normal(scale=0.8, size=(calib_n,) + tuple(net.input_shape)).astype(np.float32)
    mfdfp = MFDFPNetwork.from_float(net, calib)
    mfdfp.calibrate_bias_to_accumulator_grid()
    return mfdfp.deploy()


def _conv_net(rng):
    """All op kinds, even spatial dims."""
    return Network(
        [
            Conv2D(3, 8, 5, stride=1, pad=2, rng=rng, name="c1"),
            ReLU(name="r1"),
            MaxPool2D(3, stride=2, name="p1"),
            Conv2D(8, 8, 3, stride=1, pad=1, rng=rng, name="c2"),
            ReLU(name="r2"),
            AvgPool2D(3, stride=2, name="p2"),
            Flatten(name="f"),
            Dense(8 * 4 * 4, 10, rng=rng, name="d"),
        ],
        input_shape=(3, 16, 16),
        name="conv_net",
    )


def _odd_grouped_net(rng):
    """Odd input size, grouped + strided conv, ceil-mode pooling tails."""
    return Network(
        [
            Conv2D(4, 8, 3, stride=2, pad=1, groups=2, rng=rng, name="c1"),
            ReLU(name="r1"),
            MaxPool2D(3, stride=2, name="p1"),
            Conv2D(8, 6, 3, stride=1, pad=1, rng=rng, name="c2"),
            ReLU(name="r2"),
            AvgPool2D(2, stride=2, name="p2"),
            Flatten(name="f"),
            Dense(6 * 2 * 2, 5, rng=rng, name="d"),
        ],
        input_shape=(4, 15, 15),
        name="odd_grouped",
    )


def _mlp(rng):
    """Dense-only network (no spatial ops at all)."""
    return Network(
        [
            Dense(12, 16, rng=rng, name="d1"),
            ReLU(name="r1"),
            Dense(16, 4, rng=rng, name="d2"),
        ],
        input_shape=(12,),
        name="mlp",
    )


NET_BUILDERS = {"conv": _conv_net, "odd_grouped": _odd_grouped_net, "mlp": _mlp}


class TestShiftLut:
    def test_lut_matches_decoded_fields(self):
        codes = np.arange(16, dtype=np.uint8)
        sign, exp = pow2_code_fields(codes)
        assert np.array_equal(SHIFT_LUT, sign << (7 + exp))

    def test_shift_weight_ints_gathers(self, rng):
        codes = rng.integers(0, 16, size=(5, 7)).astype(np.uint8)
        sign, exp = pow2_code_fields(codes)
        assert np.array_equal(shift_weight_ints(codes), sign << (7 + exp))

    def test_rejects_wide_codes(self):
        with pytest.raises(ValueError, match="4 bits"):
            shift_weight_ints(np.array([16]))

    def test_rejects_negative_codes(self):
        with pytest.raises(ValueError, match="4 bits"):
            shift_weight_ints(np.array([-1]))  # would wrap to LUT[15]


class TestBitExactness:
    @pytest.mark.parametrize("net_kind", sorted(NET_BUILDERS))
    @pytest.mark.parametrize("batch", [1, 3, 64])
    def test_engine_matches_reference(self, net_kind, batch):
        rng = np.random.default_rng(sum(map(ord, net_kind)))
        deployed = _deploy(NET_BUILDERS[net_kind](rng), rng)
        engine = BatchedEngine(deployed)
        x = rng.normal(scale=0.8, size=(batch,) + engine.input_shape).astype(np.float32)
        assert np.array_equal(engine.run_codes(x), execute_deployed(deployed, x))

    def test_engine_matches_per_sample_scalar_path(self):
        rng = np.random.default_rng(0)
        deployed = _deploy(_conv_net(rng), rng)
        engine = BatchedEngine(deployed)
        x = rng.normal(scale=0.8, size=(9, 3, 16, 16)).astype(np.float32)
        scalar = np.concatenate([execute_deployed(deployed, x[i : i + 1]) for i in range(9)])
        assert np.array_equal(engine.run_codes(x), scalar)

    def test_check_widths_mode_matches(self):
        rng = np.random.default_rng(1)
        deployed = _deploy(_conv_net(rng), rng)
        engine = BatchedEngine(deployed, check_widths=True)
        x = rng.normal(scale=0.8, size=(4, 3, 16, 16)).astype(np.float32)
        assert np.array_equal(
            engine.run_codes(x), execute_deployed(deployed, x, check_widths=True)
        )

    def test_logits_match_accelerator_run(self):
        rng = np.random.default_rng(2)
        deployed = _deploy(_conv_net(rng), rng)
        accel = Accelerator(AcceleratorConfig(precision="mfdfp"))
        x = rng.normal(scale=0.8, size=(6, 3, 16, 16)).astype(np.float32)
        assert np.array_equal(accel.run(deployed, x), accel.run_batched(deployed, x))
        assert np.array_equal(accel.run(deployed, x), BatchedEngine(deployed).run(x))

    def test_predict_is_argmax_of_logits(self):
        rng = np.random.default_rng(3)
        deployed = _deploy(_conv_net(rng), rng)
        engine = BatchedEngine(deployed)
        x = rng.normal(scale=0.8, size=(5, 3, 16, 16)).astype(np.float32)
        assert np.array_equal(engine.predict(x), np.argmax(engine.run(x), axis=1))


class TestEngineStructure:
    def test_registry_covers_all_deployable_kinds(self):
        assert set(OP_REGISTRY) == {"conv", "dense", "maxpool", "avgpool", "flatten"}
        for handler in OP_REGISTRY.values():
            assert callable(handler.reference) and callable(handler.compile)

    def test_unknown_kind_rejected_both_paths(self):
        rng = np.random.default_rng(4)
        deployed = _deploy(_mlp(rng), rng)
        deployed.ops.append(DeployedLayer(kind="softmax", name="bad", in_frac=0, out_frac=0))
        x = rng.normal(size=(2, 12)).astype(np.float32)
        with pytest.raises(ValueError, match="softmax"):
            execute_deployed(deployed, x)
        with pytest.raises(ValueError, match="softmax"):
            BatchedEngine(deployed)

    def test_empty_network_rejected(self):
        rng = np.random.default_rng(5)
        deployed = _deploy(_mlp(rng), rng)
        deployed.ops = []
        with pytest.raises(ValueError, match="empty"):
            BatchedEngine(deployed)

    def test_shapes_and_summary(self):
        rng = np.random.default_rng(6)
        deployed = _deploy(_conv_net(rng), rng)
        engine = BatchedEngine(deployed)
        assert engine.input_shape == (3, 16, 16)
        assert engine.output_shape == (10,)
        summary = engine.layer_summary()
        assert [row["kind"] for row in summary] == [op.kind for op in deployed.ops]
        assert summary[-1]["out_shape"] == (10,)
        assert "BatchedEngine" in repr(engine)

    def test_wrong_input_shape_rejected(self):
        rng = np.random.default_rng(7)
        engine = BatchedEngine(_deploy(_conv_net(rng), rng))
        with pytest.raises(ValueError, match="expected batch"):
            engine.run(np.zeros((2, 3, 8, 8), dtype=np.float32))

    def test_accelerator_engine_cache(self):
        rng = np.random.default_rng(8)
        deployed = _deploy(_conv_net(rng), rng)
        accel = Accelerator(AcceleratorConfig(precision="mfdfp"))
        assert accel.engine_for(deployed) is accel.engine_for(deployed)


class TestBatchedSchedules:
    def test_batch_schedule_scales_compute_not_weights(self):
        rng = np.random.default_rng(9)
        deployed = _deploy(_conv_net(rng), rng)
        accel = Accelerator(AcceleratorConfig(precision="mfdfp"))
        one = accel.scheduler.schedule_deployed(deployed)
        batch = accel.scheduler.schedule_deployed_batch(deployed, 8)
        assert batch.batch_size == 8
        for a, b in zip(one.layers, batch.layers):
            assert b.compute_cycles == 8 * a.compute_cycles
            assert b.macs == 8 * a.macs
            assert b.input_elems == 8 * a.input_elems
            assert b.weight_elems == a.weight_elems  # weights stay resident

    def test_batch_throughput_beats_single(self):
        rng = np.random.default_rng(10)
        deployed = _deploy(_conv_net(rng), rng)
        accel = Accelerator(AcceleratorConfig(precision="mfdfp"))
        single = accel.schedule(deployed).throughput_ips()
        batched = accel.batch_throughput_ips(deployed, 64)
        assert batched > single  # pipeline fills amortized across the batch

    def test_batch_energy_scales_with_batch(self):
        rng = np.random.default_rng(11)
        deployed = _deploy(_conv_net(rng), rng)
        accel = Accelerator(AcceleratorConfig(precision="mfdfp"))
        e1 = accel.batch_energy_uj(deployed, 1)
        e8 = accel.batch_energy_uj(deployed, 8)
        assert e1 < e8 < 8 * e1  # per-sample energy drops with batching

    def test_batch_size_validation(self):
        rng = np.random.default_rng(12)
        deployed = _deploy(_conv_net(rng), rng)
        accel = Accelerator(AcceleratorConfig(precision="mfdfp"))
        with pytest.raises(ValueError, match="batch_size"):
            accel.schedule_batch(deployed, 0)