"""Ablation: why Algorithm 1 needs floating-point shadow weights.

Section 4.1 of the paper: gradient descent "can be ill-suited for
low-precision networks" because per-step updates are smaller than the
quantization step — "parameters may not be updated at all due to their
low-precision format".  The Courbariaux shadow-copy scheme fixes this by
accumulating updates in float.

This module trains the same quantized network both ways and demonstrates
the failure mode the paper describes.
"""

import numpy as np
import pytest

from repro.core.mfdfp import MFDFPNetwork
from repro.core.pow2 import pow2_quantize
from repro.nn import SGD, BatchIterator, error_rate
from repro.nn.loss import SoftmaxCrossEntropy


def train_steps(mfdfp, train, lr, steps, snap_master_to_pow2, seed=0):
    """SGD steps on the quantized net; optionally destroy the shadow copy
    by snapping master weights to powers of two after every update."""
    rng = np.random.default_rng(seed)
    optimizer = SGD(mfdfp.params, lr=lr, momentum=0.9)
    loss = SoftmaxCrossEntropy()
    done = 0
    while done < steps:
        for x, y in BatchIterator(train, 32, shuffle=True, rng=rng):
            logits = mfdfp.forward(x, training=True)
            loss.forward(logits, y)
            mfdfp.net.zero_grad()
            mfdfp.net.backward(loss.backward())
            optimizer.step()
            if snap_master_to_pow2:
                for layer in mfdfp.net.layers:
                    if layer.params:
                        w = layer.params[0]
                        w.data = pow2_quantize(w.data).astype(w.data.dtype)
            done += 1
            if done >= steps:
                break
    return mfdfp


@pytest.fixture(scope="module")
def ablation(trained_small_net, small_data):
    train, test = small_data
    # The paper's regime: small learning rate (1e-3), where per-step
    # updates are below the power-of-two quantization step.  (At large
    # learning rates with momentum, even snapped training can jump
    # levels, which is precisely the paper's point about needing high
    # precision for small gradients.)
    lr, steps = 1e-3, 160

    shadow = MFDFPNetwork.from_float(trained_small_net.clone(), train.x[:128])
    initial_error = error_rate(shadow.net, test)
    train_steps(shadow, train, lr, steps, snap_master_to_pow2=False)

    snapped = MFDFPNetwork.from_float(trained_small_net.clone(), train.x[:128])
    train_steps(snapped, train, lr, steps, snap_master_to_pow2=True)

    return {
        "initial": initial_error,
        "shadow": error_rate(shadow.net, test),
        "snapped": error_rate(snapped.net, test),
        "shadow_net": shadow,
        "snapped_net": snapped,
    }


class TestShadowWeightNecessity:
    def test_shadow_training_improves(self, ablation):
        """With float masters, fine-tuning recovers quantization loss."""
        assert ablation["shadow"] <= ablation["initial"] + 0.02

    def test_shadow_not_worse_than_snapped(self, ablation):
        """Destroying the shadow copy forfeits the fine-tuning benefit —
        the paper's §4.1 argument, measured."""
        assert ablation["shadow"] <= ablation["snapped"] + 0.01

    def test_snapped_weights_barely_move(self, trained_small_net, small_data):
        """With masters snapped to powers of two, small-gradient updates
        are mostly erased by the re-quantization: far fewer weights end
        up changed than under shadow training."""
        train, _ = small_data
        lr, steps = 1e-4, 30  # deliberately small lr: the paper's regime

        def changed_fraction(snap):
            mf = MFDFPNetwork.from_float(trained_small_net.clone(), train.x[:128])
            before = {k: v.copy() for k, v in mf.quantized_weights().items()}
            train_steps(mf, train, lr, steps, snap_master_to_pow2=snap, seed=4)
            after = mf.quantized_weights()
            total = sum(v.size for v in before.values())
            moved = sum((before[k] != after[k]).sum() for k in before)
            return moved / total

        frac_snapped = changed_fraction(snap=True)
        frac_shadow = changed_fraction(snap=False)
        # shadow accumulation flips at least as many quantized weights
        assert frac_shadow >= frac_snapped

    def test_plan_summary_renders(self, ablation):
        text = ablation["shadow_net"].plan.summary()
        assert "dynamic fixed point" in text
        assert "conv1" in text
        assert "<8," in text


class TestThroughputHelper:
    def test_throughput_matches_latency(self):
        from repro.hw import TileScheduler
        from repro.zoo import cifar10_full

        schedule = TileScheduler().schedule_network(cifar10_full())
        assert schedule.throughput_ips() == pytest.approx(1e6 / schedule.time_us())

    def test_cifar_throughput_magnitude(self):
        """~220 us/inference -> ~4500 inferences/s on one PU."""
        from repro.hw import TileScheduler
        from repro.zoo import cifar10_full

        ips = TileScheduler().schedule_network(cifar10_full()).throughput_ips()
        assert 3000 < ips < 7000
