"""MFDFPNetwork wrapper, shadow-weight training semantics, deployment."""

import numpy as np
import pytest

from repro.core.mfdfp import MFDFPNetwork, deploy
from repro.core.pow2 import pow2_quantize
from repro.nn import (
    SGD,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    Network,
    ReLU,
    Tanh,
)
from repro.nn.loss import SoftmaxCrossEntropy


def small_net(dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    return Network(
        [
            Conv2D(1, 4, 3, pad=1, dtype=dtype, rng=rng, name="conv1"),
            ReLU(name="relu1"),
            MaxPool2D(2, stride=2, name="pool1"),
            Flatten(name="flat"),
            Dense(4 * 4 * 4, 3, dtype=dtype, rng=rng, name="fc"),
        ],
        input_shape=(1, 8, 8),
        name="small",
    )


@pytest.fixture
def calib(rng):
    return rng.normal(size=(16, 1, 8, 8))


class TestFromFloat:
    def test_forward_sees_pow2_weights(self, calib):
        net = small_net()
        mf = MFDFPNetwork.from_float(net, calib)
        qw = mf.quantized_weights()["conv1"]
        assert np.array_equal(qw, pow2_quantize(net.layer("conv1").weight.data))

    def test_master_weights_stay_float(self, calib):
        net = small_net()
        original = net.layer("conv1").weight.data.copy()
        MFDFPNetwork.from_float(net, calib)
        assert np.array_equal(net.layer("conv1").weight.data, original)

    def test_to_float_strips_hooks(self, calib, rng):
        net = small_net()
        x = rng.normal(size=(2, 1, 8, 8))
        y_before = net.logits(x)
        mf = MFDFPNetwork.from_float(net, calib)
        mf.to_float()
        assert np.allclose(net.logits(x), y_before)

    def test_delegation(self, calib, rng):
        net = small_net()
        mf = MFDFPNetwork.from_float(net, calib)
        x = rng.normal(size=(2, 1, 8, 8))
        assert np.array_equal(mf.predict(x), net.predict(x))
        assert len(mf.params) == len(net.params)


class TestShadowWeightTraining:
    def test_small_gradients_accumulate_into_quantized_jumps(self, calib):
        """The Courbariaux mechanism: many small float updates eventually
        flip a power-of-two weight even though each single update would
        be absorbed by rounding."""
        net = small_net()
        mf = MFDFPNetwork.from_float(net, calib)
        layer = net.layer("fc")
        w0_quant = mf.quantized_weights()["fc"].copy()
        # apply many tiny updates to the float master
        idx = (0, 0)
        for _ in range(1000):
            layer.weight.data[idx] *= 1.01
        w1_quant = mf.quantized_weights()["fc"]
        assert w1_quant[idx] != w0_quant[idx]

    def test_single_tiny_update_does_not_move_quantized_weight(self, calib):
        net = small_net()
        mf = MFDFPNetwork.from_float(net, calib)
        layer = net.layer("fc")
        w0 = mf.quantized_weights()["fc"].copy()
        layer.weight.data *= 1.0001
        assert np.array_equal(mf.quantized_weights()["fc"], w0)

    def test_training_step_updates_master_not_quantized_grid(self, calib, rng):
        net = small_net()
        mf = MFDFPNetwork.from_float(net, calib)
        opt = SGD(mf.params, lr=1e-4, momentum=0.0)
        loss = SoftmaxCrossEntropy()
        x = rng.normal(size=(4, 1, 8, 8))
        y = np.array([0, 1, 2, 0])
        before = net.layer("fc").weight.data.copy()
        logits = mf.forward(x, training=True)
        loss.forward(logits, y)
        net.zero_grad()
        net.backward(loss.backward())
        opt.step()
        after = net.layer("fc").weight.data
        assert not np.array_equal(before, after)
        # master values are NOT powers of two (they are the shadow copy)
        log = np.log2(np.abs(after[np.abs(after) > 1e-12]))
        assert not np.allclose(log, np.rint(log))


class TestDeploy:
    def test_op_sequence(self, calib):
        mf = MFDFPNetwork.from_float(small_net(), calib)
        dep = mf.deploy()
        assert [op.kind for op in dep.ops] == ["conv", "maxpool", "flatten", "dense"]

    def test_relu_fused_into_conv(self, calib):
        mf = MFDFPNetwork.from_float(small_net(), calib)
        dep = mf.deploy()
        assert dep.ops[0].activation == "relu"
        assert dep.ops[-1].activation == "none"

    def test_weight_codes_match_quantized_weights(self, calib):
        mf = MFDFPNetwork.from_float(small_net(), calib)
        dep = mf.deploy()
        sign, exp = dep.ops[0].weight_fields()
        decoded = sign * np.exp2(exp.astype(np.float64))
        assert np.allclose(decoded.reshape(-1), mf.quantized_weights()["conv1"].ravel())

    def test_radix_indices_follow_plan(self, calib):
        mf = MFDFPNetwork.from_float(small_net(), calib)
        dep = mf.deploy()
        conv = dep.ops[0]
        assert conv.m == mf.plan.input_fmt.frac
        assert conv.n == mf.plan.spec("relu1").out_fmt.frac

    def test_bias_on_accumulator_grid(self, calib):
        net = small_net()
        mf = MFDFPNetwork.from_float(net, calib)
        dep = mf.deploy()
        conv = dep.ops[0]
        scale = 2.0 ** (conv.in_frac + 7)
        expected = np.rint(net.layer("conv1").bias.data * scale)
        assert np.array_equal(conv.bias_int, expected.astype(np.int64))

    def test_parameter_count_matches_network(self, calib):
        net = small_net()
        mf = MFDFPNetwork.from_float(net, calib)
        assert mf.deploy().parameter_count() == net.param_count()

    def test_memory_is_8x_smaller_than_float(self, calib):
        net = small_net()
        dep = MFDFPNetwork.from_float(net, calib).deploy()
        float_bytes = net.param_count() * 4
        assert float_bytes / dep.weight_memory_bytes() == 8.0

    def test_dropout_vanishes(self, calib, rng):
        net = Network(
            [
                Flatten(name="flat"),
                Dense(64, 8, dtype=np.float64, rng=rng, name="fc1"),
                ReLU(name="relu1"),
                Dropout(0.5, name="drop"),
                Dense(8, 3, dtype=np.float64, rng=rng, name="fc2"),
            ],
            input_shape=(1, 8, 8),
        )
        mf = MFDFPNetwork.from_float(net, calib)
        dep = mf.deploy()
        assert [op.kind for op in dep.ops] == ["flatten", "dense", "dense"]

    def test_tanh_rejected(self, calib, rng):
        net = Network(
            [Flatten(), Dense(64, 3, dtype=np.float64, rng=rng), Tanh()],
            input_shape=(1, 8, 8),
        )
        mf = MFDFPNetwork.from_float(net, calib)
        with pytest.raises(ValueError, match="not supported"):
            mf.deploy()

    def test_lrn_rejected(self, calib, rng):
        net = Network(
            [
                Conv2D(1, 4, 3, pad=1, dtype=np.float64, rng=rng, name="c"),
                ReLU(),
                LocalResponseNorm(3),
                Flatten(),
                Dense(256, 3, dtype=np.float64, rng=rng),
            ],
            input_shape=(1, 8, 8),
        )
        mf = MFDFPNetwork.from_float(net, calib)
        with pytest.raises(ValueError, match="not supported"):
            mf.deploy()

    def test_deploy_requires_input_shape(self, calib, rng):
        net = Network([Flatten(), Dense(64, 3, dtype=np.float64, rng=rng)])
        mf = MFDFPNetwork.from_float(net, calib.reshape(16, 1, 8, 8))
        net.input_shape = None
        with pytest.raises(ValueError, match="input_shape"):
            mf.deploy()


class TestBiasCalibration:
    def test_biases_snapped_to_accumulator_grid(self, calib):
        net = small_net()
        mf = MFDFPNetwork.from_float(net, calib)
        mf.calibrate_bias_to_accumulator_grid()
        for name in ("conv1", "fc"):
            layer = net.layer(name)
            frac = mf.plan.spec(name).in_fmt.frac + 7
            scaled = layer.bias.data * 2.0**frac
            assert np.allclose(scaled, np.rint(scaled))
