"""Dynamic fixed-point format: grids, rounding, saturation, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dfp import (
    DFPFormat,
    DFPQuantizer,
    choose_fraction_length,
    dfp_from_codes,
    dfp_quantize,
    dfp_to_codes,
)


class TestDFPFormat:
    def test_paper_default_8bit(self):
        fmt = DFPFormat(8, 0)
        assert fmt.max_code == 127
        assert fmt.max_value == 127.0
        assert fmt.min_value == -127.0

    def test_resolution(self):
        assert DFPFormat(8, 4).resolution == 2.0**-4
        assert DFPFormat(8, -2).resolution == 4.0

    def test_negative_frac_supported(self):
        fmt = DFPFormat(8, -1)
        assert fmt.max_value == 254.0

    def test_too_few_bits_rejected(self):
        with pytest.raises(ValueError):
            DFPFormat(1, 0)

    def test_str(self):
        assert str(DFPFormat(8, 4)) == "<8,4>"


class TestCodes:
    def test_roundtrip_exact_grid_points(self):
        fmt = DFPFormat(8, 3)
        values = np.array([0.0, 0.125, -0.125, 15.875, -15.875])
        assert np.allclose(dfp_from_codes(dfp_to_codes(values, fmt), fmt), values)

    def test_saturation_at_rails(self):
        fmt = DFPFormat(8, 0)
        codes = dfp_to_codes(np.array([1e9, -1e9]), fmt)
        assert np.array_equal(codes, [127, -127])

    def test_rounding_half_to_even(self):
        fmt = DFPFormat(8, 0)
        assert dfp_to_codes(np.array([0.5]), fmt)[0] == 0
        assert dfp_to_codes(np.array([1.5]), fmt)[0] == 2
        assert dfp_to_codes(np.array([-0.5]), fmt)[0] == 0

    def test_from_codes_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            dfp_from_codes(np.array([128]), DFPFormat(8, 0))

    def test_sign_symmetric_range(self):
        """Sign-magnitude: the range is symmetric (no -128)."""
        fmt = DFPFormat(8, 0)
        assert dfp_to_codes(np.array([-128.0]), fmt)[0] == -127


class TestQuantize:
    def test_values_on_grid(self, rng):
        fmt = DFPFormat(8, 5)
        q = dfp_quantize(rng.normal(size=100), fmt)
        assert np.allclose(q * 2.0**fmt.frac, np.rint(q * 2.0**fmt.frac))

    def test_error_bound_inside_range(self, rng):
        fmt = DFPFormat(8, 5)
        x = rng.uniform(-3.9, 3.9, size=500)
        q = dfp_quantize(x, fmt)
        assert np.max(np.abs(q - x)) <= fmt.resolution / 2 + 1e-12

    def test_idempotent(self, rng):
        fmt = DFPFormat(8, 4)
        q = dfp_quantize(rng.normal(size=50), fmt)
        assert np.array_equal(dfp_quantize(q, fmt), q)

    def test_preserves_dtype(self):
        fmt = DFPFormat(8, 4)
        assert dfp_quantize(np.ones(3, dtype=np.float32), fmt).dtype == np.float32

    @given(
        frac=st.integers(-4, 12),
        values=st.lists(st.floats(-1e4, 1e4, allow_nan=False), min_size=1, max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_grid_and_bounds(self, frac, values):
        """Quantized values are on the grid and within the format range."""
        fmt = DFPFormat(8, frac)
        q = dfp_quantize(np.array(values), fmt)
        scaled = q * 2.0**fmt.frac
        assert np.allclose(scaled, np.rint(scaled))
        assert np.all(np.abs(q) <= fmt.max_value + 1e-12)

    @given(
        frac=st.integers(-2, 10),
        values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_idempotence(self, frac, values):
        fmt = DFPFormat(8, frac)
        q1 = dfp_quantize(np.array(values), fmt)
        assert np.array_equal(dfp_quantize(q1, fmt), q1)


class TestChooseFractionLength:
    def test_unit_range(self):
        """max|x| = 1 with 8 bits: 127 * 2^-6 = 1.98 >= 1 > 127 * 2^-7 no wait.

        f=6: 127/64 = 1.98 >= 1; f=7: 127/128 = 0.99 < 1 -> choose 6.
        """
        assert choose_fraction_length(np.array([1.0]), bits=8) == 6

    def test_small_values_get_fine_grid(self):
        f = choose_fraction_length(np.array([0.01]), bits=8)
        assert 127 * 2.0**-f >= 0.01
        assert 127 * 2.0 ** -(f + 1) < 0.01

    def test_large_values_get_negative_frac(self):
        f = choose_fraction_length(np.array([1000.0]), bits=8)
        assert f < 0
        assert 127 * 2.0**-f >= 1000.0

    def test_zero_input_default(self):
        assert choose_fraction_length(np.zeros(4), bits=8) == 7

    def test_subnormal_input_does_not_overflow(self):
        # max_code / max_abs overflows float64 for subnormals; the log
        # formulation must survive and clamp to the fine-grid end.
        f = choose_fraction_length(np.array([0.0, 2.225073858507e-311]), bits=8)
        assert f == 64

    def test_never_saturates_calibration_max(self, rng):
        for _ in range(20):
            x = rng.uniform(0.001, 500, size=10)
            f = choose_fraction_length(x, bits=8)
            assert 127 * 2.0**-f >= x.max()

    def test_margin_reserves_headroom(self):
        base = choose_fraction_length(np.array([1.0]), bits=8, margin=0)
        with_margin = choose_fraction_length(np.array([1.0]), bits=8, margin=2)
        assert with_margin == base - 2

    @given(max_abs=st.floats(1e-6, 1e6), bits=st.integers(4, 16))
    @settings(max_examples=200, deadline=None)
    def test_property_tightest_fit(self, max_abs, bits):
        """f is the largest fraction length that does not saturate."""
        f = choose_fraction_length(np.array([max_abs]), bits=bits)
        max_code = (1 << (bits - 1)) - 1
        assert max_code * 2.0**-f >= max_abs
        assert max_code * 2.0 ** -(f + 1) < max_abs or f == 64


class TestDFPQuantizer:
    def test_callable(self, rng):
        q = DFPQuantizer(DFPFormat(8, 4))
        x = rng.normal(size=10)
        assert np.array_equal(q(x), dfp_quantize(x, DFPFormat(8, 4)))

    def test_repr(self):
        assert "<8,4>" in repr(DFPQuantizer(DFPFormat(8, 4)))
