"""Ensembles: logit averaging and accuracy (Phase 3)."""

import numpy as np
import pytest

from repro.core.ensemble import Ensemble
from repro.nn import ArrayDataset, Dense, Flatten, Network


def make_member(seed):
    rng = np.random.default_rng(seed)
    return Network(
        [Flatten(), Dense(8, 4, dtype=np.float64, rng=rng, name="fc")],
        input_shape=(8,),
        name=f"member{seed}",
    )


class TestEnsemble:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            Ensemble([])

    def test_len(self):
        assert len(Ensemble([make_member(0), make_member(1)])) == 2

    def test_logits_are_mean_of_members(self, rng):
        members = [make_member(i) for i in range(3)]
        ens = Ensemble(members)
        x = rng.normal(size=(5, 8))
        expected = np.mean([m.logits(x) for m in members], axis=0)
        assert np.allclose(ens.logits(x), expected)

    def test_single_member_is_identity(self, rng):
        member = make_member(0)
        ens = Ensemble([member])
        x = rng.normal(size=(3, 8))
        assert np.allclose(ens.logits(x), member.logits(x))

    def test_predict_is_argmax_of_mean(self, rng):
        ens = Ensemble([make_member(0), make_member(1)])
        x = rng.normal(size=(6, 8))
        assert np.array_equal(ens.predict(x), ens.logits(x).argmax(axis=1))

    def test_accuracy_bounds(self, rng):
        ens = Ensemble([make_member(0), make_member(1)])
        data = ArrayDataset(rng.normal(size=(40, 8)), rng.integers(0, 4, size=40))
        acc = ens.accuracy(data)
        assert 0.0 <= acc <= 1.0

    def test_topk_accuracy_monotone(self, rng):
        ens = Ensemble([make_member(0)])
        data = ArrayDataset(rng.normal(size=(30, 8)), rng.integers(0, 4, size=30))
        assert ens.accuracy(data, k=4) == 1.0
        assert ens.accuracy(data, k=2) >= ens.accuracy(data, k=1)

    def test_ensemble_can_fix_a_corrupted_member(self, rng):
        """Averaging suppresses one member's gross logit error."""
        good = make_member(0)
        bad = good.clone()
        data_x = rng.normal(size=(20, 8))
        labels = good.predict(data_x)  # treat good net's output as truth
        # corrupt the bad member mildly: its logits are noisy versions
        bad.layer("fc").weight.data += rng.normal(scale=0.05, size=(4, 8))
        ens = Ensemble([good, bad])
        data = ArrayDataset(data_x, labels)
        assert ens.accuracy(data) >= 0.9

    def test_accuracy_batching_consistent(self, rng):
        ens = Ensemble([make_member(0), make_member(1)])
        data = ArrayDataset(rng.normal(size=(25, 8)), rng.integers(0, 4, size=25))
        assert np.isclose(ens.accuracy(data, batch_size=4), ens.accuracy(data, batch_size=25))
