"""Power-of-two weight quantization and the 4-bit encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pow2 import (
    Pow2WeightQuantizer,
    pow2_code_fields,
    pow2_decode4,
    pow2_encode4,
    pow2_exponents,
    pow2_quantize,
)


class TestExponents:
    def test_exact_powers(self):
        w = np.array([1.0, 0.5, 0.25, 0.0078125])  # 2^0, 2^-1, 2^-2, 2^-7
        assert np.array_equal(pow2_exponents(w), [0, -1, -2, -7])

    def test_rounds_in_log_domain(self):
        # log2(0.7) = -0.515 -> rounds to -1; log2(0.72) = -0.474 -> 0
        assert pow2_exponents(np.array([0.7]))[0] == -1
        assert pow2_exponents(np.array([0.72]))[0] == 0

    def test_clamped_at_min(self):
        assert pow2_exponents(np.array([1e-9]))[0] == -7

    def test_clamped_at_max(self):
        assert pow2_exponents(np.array([100.0]))[0] == 0

    def test_zero_maps_to_min_exp(self):
        """The format has no exact zero (paper: e = max[round(log2|w|), -7])."""
        assert pow2_exponents(np.array([0.0]))[0] == -7

    def test_sign_ignored_for_exponent(self):
        assert pow2_exponents(np.array([-0.5]))[0] == -1

    def test_custom_bounds(self):
        assert pow2_exponents(np.array([8.0]), min_exp=-3, max_exp=3)[0] == 3

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            pow2_exponents(np.array([1.0]), min_exp=0, max_exp=-1)

    def test_stochastic_requires_rng(self):
        with pytest.raises(ValueError):
            pow2_exponents(np.array([0.3]), mode="stochastic")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            pow2_exponents(np.array([0.3]), mode="banana")

    def test_stochastic_expectation(self):
        """Stochastic rounding: E[e] equals log2|w| (within the clamp)."""
        rng = np.random.default_rng(0)
        w = np.full(20000, 0.375)  # log2 = -1.415
        e = pow2_exponents(w, mode="stochastic", rng=rng)
        assert set(np.unique(e)) <= {-2, -1}
        assert abs(e.mean() - np.log2(0.375)) < 0.02

    def test_deterministic_is_mode_of_stochastic(self):
        rng = np.random.default_rng(1)
        w = np.full(5000, 0.4)  # log2 = -1.32: closer to -1
        det = pow2_exponents(w[:1])[0]
        sto = pow2_exponents(w, mode="stochastic", rng=rng)
        values, counts = np.unique(sto, return_counts=True)
        assert values[counts.argmax()] == det


class TestQuantize:
    def test_result_is_signed_power_of_two(self, rng):
        w = rng.normal(scale=0.1, size=200)
        q = pow2_quantize(w)
        log = np.log2(np.abs(q))
        assert np.allclose(log, np.rint(log))
        assert np.all(np.abs(q) <= 1.0)
        assert np.all(np.abs(q) >= 2.0**-7)

    def test_sign_preserved(self, rng):
        w = rng.normal(scale=0.1, size=100)
        w[w == 0] = 0.05
        q = pow2_quantize(w)
        assert np.array_equal(np.sign(q), np.sign(w))

    def test_nearest_in_log_domain(self, rng):
        """The chosen power of two minimizes |log2|w| - e| within bounds."""
        w = rng.uniform(2.0**-7, 1.0, size=300)
        q = pow2_quantize(w)
        chosen = np.log2(np.abs(q))
        target = np.log2(np.abs(w))
        for e in range(-7, 1):
            assert np.all(np.abs(chosen - target) <= np.abs(e - target) + 1e-12)

    def test_dtype_preserved(self):
        q = pow2_quantize(np.array([0.3], dtype=np.float32))
        assert q.dtype == np.float32

    @given(st.lists(st.floats(-2.0, 2.0, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=150, deadline=None)
    def test_property_always_valid_output(self, values):
        q = pow2_quantize(np.array(values))
        mag = np.abs(q)
        assert np.all(mag >= 2.0**-7 - 1e-15)
        assert np.all(mag <= 1.0 + 1e-15)
        assert np.allclose(np.log2(mag), np.rint(np.log2(mag)))

    def test_idempotent(self, rng):
        w = rng.normal(scale=0.2, size=50)
        q = pow2_quantize(w)
        assert np.array_equal(pow2_quantize(q), q)


class TestEncoding:
    def test_roundtrip(self, rng):
        w = rng.normal(scale=0.1, size=100)
        codes = pow2_encode4(w)
        assert np.array_equal(pow2_decode4(codes), pow2_quantize(w))

    def test_codes_fit_4_bits(self, rng):
        codes = pow2_encode4(rng.normal(size=1000))
        assert codes.dtype == np.uint8
        assert codes.max() <= 0x0F

    def test_known_encodings(self):
        # +2^0 -> 0b0000; -2^0 -> 0b1000; +2^-7 -> 0b0111; -2^-3 -> 0b1011
        w = np.array([1.0, -1.0, 0.0078125, -0.125])
        assert np.array_equal(pow2_encode4(w), [0b0000, 0b1000, 0b0111, 0b1011])

    def test_decode_rejects_wide_codes(self):
        with pytest.raises(ValueError):
            pow2_decode4(np.array([16]))

    def test_encode_rejects_wide_exponent_range(self):
        with pytest.raises(ValueError):
            pow2_encode4(np.array([0.5]), min_exp=-8, max_exp=0)
        with pytest.raises(ValueError):
            pow2_encode4(np.array([0.5]), min_exp=-3, max_exp=2)

    def test_code_fields(self):
        codes = pow2_encode4(np.array([-0.25, 0.5]))
        sign, e = pow2_code_fields(codes)
        assert np.array_equal(sign, [-1, 1])
        assert np.array_equal(e, [-2, -1])

    @given(st.lists(st.floats(-1.5, 1.5, allow_nan=False), min_size=1, max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_property_encode_decode_roundtrip(self, values):
        w = np.array(values)
        assert np.array_equal(pow2_decode4(pow2_encode4(w)), pow2_quantize(w))


class TestPow2WeightQuantizer:
    def test_callable_matches_function(self, rng):
        q = Pow2WeightQuantizer()
        w = rng.normal(scale=0.1, size=30)
        assert np.array_equal(q(w), pow2_quantize(w))

    def test_shape_preserved(self, rng):
        q = Pow2WeightQuantizer()
        w = rng.normal(size=(4, 3, 5, 5))
        assert q(w).shape == w.shape

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            Pow2WeightQuantizer(mode="nope")

    def test_stochastic_uses_rng(self):
        q = Pow2WeightQuantizer(mode="stochastic", rng=np.random.default_rng(0))
        w = np.full(1000, 0.375)
        out = q(w)
        assert len(np.unique(out)) == 2  # both neighbours appear
