"""Algorithm 1 phases: fine-tuning recovers accuracy, distillation helps."""

import numpy as np
import pytest

from repro.core import (
    MFDFPConfig,
    MFDFPNetwork,
    build_mfdfp_ensemble,
    phase1_finetune,
    phase2_distill,
    run_algorithm1,
)
from repro.nn import SGD, Trainer, error_rate
from repro.zoo import cifar10_small


@pytest.fixture(scope="module")
def problem():
    """Small trained float net + data, shared by the phase tests."""
    from repro.datasets import cifar10_surrogate

    train, test = cifar10_surrogate(n_train=300, n_test=100, size=16, seed=5)
    net = cifar10_small(size=16, rng=np.random.default_rng(2))
    optimizer = SGD(net.params, lr=0.02, momentum=0.9)
    Trainer(net, optimizer, batch_size=32, rng=np.random.default_rng(3)).fit(
        train, test, epochs=8
    )
    return net, train, test


def fast_config(**overrides):
    defaults = dict(phase1_epochs=4, phase2_epochs=4, lr=5e-3, batch_size=32)
    defaults.update(overrides)
    return MFDFPConfig(**defaults)


class TestPhase1:
    def test_finetuning_recovers_quantization_loss(self, problem):
        net, train, test = problem
        float_err = error_rate(net, test)
        student = net.clone()
        mf = MFDFPNetwork.from_float(student, train.x[:128])
        err_after_quant = error_rate(mf.net, test)
        history = phase1_finetune(mf, train, test, fast_config())
        err_after_ft = history.epochs[-1].val_error
        # fine-tuning should not be worse than raw quantization
        assert err_after_ft <= err_after_quant + 0.02
        # and should end within a reasonable gap of the float network
        assert err_after_ft <= float_err + 0.15

    def test_history_length_bounded_by_epochs(self, problem):
        net, train, test = problem
        mf = MFDFPNetwork.from_float(net.clone(), train.x[:128])
        history = phase1_finetune(mf, train, test, fast_config(phase1_epochs=3))
        assert 1 <= len(history.epochs) <= 3

    def test_weights_remain_pow2_in_forward(self, problem):
        net, train, test = problem
        mf = MFDFPNetwork.from_float(net.clone(), train.x[:128])
        phase1_finetune(mf, train, test, fast_config(phase1_epochs=2))
        for name, w in mf.quantized_weights().items():
            log = np.log2(np.abs(w))
            assert np.allclose(log, np.rint(log)), name


class TestPhase2:
    def test_distillation_runs_and_tracks_history(self, problem):
        net, train, test = problem
        teacher = net.clone()
        mf = MFDFPNetwork.from_float(net.clone(), train.x[:128])
        history = phase2_distill(mf, teacher, train, test, fast_config(phase2_epochs=3))
        assert 1 <= len(history.epochs) <= 3
        assert all(np.isfinite(e.train_loss) for e in history.epochs)

    def test_distillation_not_worse_than_no_training(self, problem):
        net, train, test = problem
        teacher = net.clone()
        mf = MFDFPNetwork.from_float(net.clone(), train.x[:128])
        before = error_rate(mf.net, test)
        history = phase2_distill(mf, teacher, train, test, fast_config())
        assert history.epochs[-1].val_error <= before + 0.05


class TestAlgorithm1:
    def test_end_to_end(self, problem):
        net, train, test = problem
        result = run_algorithm1(net.clone(), train, test, train.x[:128], fast_config())
        assert result.phase1.epochs and result.phase2.epochs
        assert 0.0 <= result.final_val_error <= 1.0
        assert np.isfinite(result.float_val_error)

    def test_quantized_close_to_float(self, problem):
        """The paper's headline: < ~1% degradation.  On the small surrogate
        we allow a wider but still tight band."""
        net, train, test = problem
        result = run_algorithm1(net.clone(), train, test, train.x[:128], fast_config())
        assert result.final_val_error <= result.float_val_error + 0.12

    def test_error_curve_concatenates_phases(self, problem):
        net, train, test = problem
        result = run_algorithm1(net.clone(), train, test, train.x[:128], fast_config())
        curve = result.error_curve()
        assert len(curve) == len(result.phase1.epochs) + len(result.phase2.epochs)
        epochs = [e for e, _, _ in curve]
        assert epochs == sorted(epochs)
        phases = [p for _, _, p in curve]
        assert phases.index("phase2") == len(result.phase1.epochs)

    def test_deployable_after_training(self, problem):
        net, train, test = problem
        result = run_algorithm1(net.clone(), train, test, train.x[:128], fast_config())
        dep = result.mfdfp.deploy()
        assert dep.parameter_count() == net.param_count()


class TestEnsemblePipeline:
    def test_requires_two_networks(self, problem):
        net, train, test = problem
        with pytest.raises(ValueError):
            build_mfdfp_ensemble([net.clone()], train, test, train.x[:64])

    def test_builds_ensemble_of_results(self, problem):
        net, train, test = problem
        nets = [net.clone(), net.clone()]
        # decorrelate the second starting point a little
        rng = np.random.default_rng(0)
        for p in nets[1].params:
            p.data = p.data + rng.normal(scale=0.01, size=p.data.shape)
        ensemble, results = build_mfdfp_ensemble(
            nets, train, test, train.x[:128], fast_config(phase1_epochs=2, phase2_epochs=2)
        )
        assert len(ensemble) == 2
        assert len(results) == 2
        acc = ensemble.accuracy(test)
        best_member = max(1 - r.final_val_error for r in results)
        # ensembling should be at least competitive with its members
        assert acc >= best_member - 0.08
