"""Network quantization planning: profiling, boundaries, hooks."""

import numpy as np
import pytest

from repro.core.dfp import DFPQuantizer
from repro.core.pow2 import Pow2WeightQuantizer
from repro.core.quantizer import (
    NetworkQuantizer,
    profile_activation_ranges,
    strip_quantization,
)
from repro.nn import AvgPool2D, Conv2D, Dense, Flatten, MaxPool2D, Network, ReLU


def build_net(dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    return Network(
        [
            Conv2D(1, 4, 3, pad=1, dtype=dtype, rng=rng, name="conv1"),
            ReLU(name="relu1"),
            MaxPool2D(2, stride=2, name="pool1"),
            Conv2D(4, 4, 3, pad=1, dtype=dtype, rng=rng, name="conv2"),
            ReLU(name="relu2"),
            AvgPool2D(2, stride=2, name="pool2"),
            Flatten(name="flat"),
            Dense(4 * 2 * 2, 3, dtype=dtype, rng=rng, name="fc"),
        ],
        input_shape=(1, 8, 8),
        name="qnet",
    )


@pytest.fixture
def calib(rng):
    return rng.normal(size=(16, 1, 8, 8))


class TestProfiling:
    def test_ranges_cover_all_layers(self, calib):
        net = build_net()
        input_max, ranges = profile_activation_ranges(net, calib)
        assert set(ranges) == {layer.name for layer in net.layers}
        assert input_max == pytest.approx(np.abs(calib).max())

    def test_ranges_are_max_abs(self, calib):
        net = build_net()
        _, ranges = profile_activation_ranges(net, calib)
        out = calib
        for layer in net.layers:
            out = layer.forward(out)
            assert ranges[layer.name] == pytest.approx(np.abs(out).max())

    def test_rejects_already_quantized_net(self, calib):
        net = build_net()
        net.layers[0].weight_quantizer = Pow2WeightQuantizer()
        with pytest.raises(ValueError, match="float network"):
            profile_activation_ranges(net, calib)


class TestPlanning:
    def test_plan_covers_all_layers(self, calib):
        net = build_net()
        plan = NetworkQuantizer().plan(net, calib)
        assert len(plan.layers) == len(net.layers)

    def test_boundary_chaining(self, calib):
        """Each layer's in_fmt is the previous layer's out_fmt."""
        net = build_net()
        plan = NetworkQuantizer().plan(net, calib)
        prev = plan.input_fmt
        for spec in plan.layers:
            assert spec.in_fmt == prev
            prev = spec.out_fmt

    def test_compute_layer_defers_to_activation_boundary(self, calib):
        """conv followed by ReLU shares the ReLU's output format."""
        net = build_net()
        plan = NetworkQuantizer().plan(net, calib)
        conv_spec = plan.spec("conv1")
        relu_spec = plan.spec("relu1")
        assert not conv_spec.quantize_output
        assert relu_spec.quantize_output
        assert conv_spec.out_fmt == relu_spec.out_fmt

    def test_final_dense_owns_its_boundary(self, calib):
        net = build_net()
        plan = NetworkQuantizer().plan(net, calib)
        assert plan.spec("fc").quantize_output

    def test_weight_quantization_only_on_compute_layers(self, calib):
        net = build_net()
        plan = NetworkQuantizer().plan(net, calib)
        for spec in plan.layers:
            expected = spec.layer_name in ("conv1", "conv2", "fc")
            assert spec.quantize_weights == expected

    def test_dynamic_gives_per_layer_fracs(self, calib):
        """With ranges differing across layers, fraction lengths differ."""
        net = build_net()
        # inflate conv2 weights so its output range is much larger
        net.layer("conv2").weight.data *= 20
        plan = NetworkQuantizer(dynamic=True).plan(net, calib)
        fracs = set(plan.fraction_lengths().values())
        assert len(fracs) > 1

    def test_static_gives_single_frac(self, calib):
        net = build_net()
        net.layer("conv2").weight.data *= 20
        plan = NetworkQuantizer(dynamic=False).plan(net, calib)
        fracs = set(plan.fraction_lengths().values())
        assert len(fracs) == 1
        assert plan.input_fmt.frac in fracs

    def test_plan_fracs_independent_of_calibration_dtype(self, calib):
        """Regression (dtype-discipline): the range wrappers force
        float64, so a float32 calibration batch picks the same fraction
        lengths as the same values in float64 — the plan must not shift
        with the caller's activation dtype."""
        net64 = build_net()
        net32 = build_net()
        for dynamic in (True, False):
            plan64 = NetworkQuantizer(dynamic=dynamic).plan(net64, calib)
            plan32 = NetworkQuantizer(dynamic=dynamic).plan(
                net32, calib.astype(np.float32)
            )
            assert plan32.fraction_lengths() == plan64.fraction_lengths()
            assert plan32.input_fmt.frac == plan64.input_fmt.frac

    def test_spec_lookup_missing(self, calib):
        plan = NetworkQuantizer().plan(build_net(), calib)
        with pytest.raises(KeyError):
            plan.spec("nonexistent")

    def test_custom_bits(self, calib):
        plan = NetworkQuantizer(bits=6).plan(build_net(), calib)
        assert plan.input_fmt.bits == 6
        assert all(s.out_fmt.bits == 6 for s in plan.layers)


class TestApplication:
    def test_hooks_attached(self, calib):
        net = build_net()
        NetworkQuantizer().quantize(net, calib)
        assert isinstance(net.input_quantizer, DFPQuantizer)
        assert isinstance(net.layer("conv1").weight_quantizer, Pow2WeightQuantizer)
        assert net.layer("conv1").output_quantizer is None  # deferred to relu1
        assert isinstance(net.layer("relu1").output_quantizer, DFPQuantizer)

    def test_quantized_forward_changes_output(self, calib):
        net = build_net()
        x = calib[:4]
        y_float = net.logits(x)
        NetworkQuantizer().quantize(net, calib)
        y_quant = net.logits(x)
        assert not np.allclose(y_float, y_quant)

    def test_quantized_output_on_grid(self, calib):
        net = build_net()
        quantizer = NetworkQuantizer()
        plan = quantizer.quantize(net, calib)
        y = net.logits(calib[:4])
        f = plan.spec("fc").out_fmt.frac
        scaled = y * 2.0**f
        assert np.allclose(scaled, np.rint(scaled))

    def test_strip_restores_float_behaviour(self, calib):
        net = build_net()
        x = calib[:4]
        y_float = net.logits(x)
        NetworkQuantizer().quantize(net, calib)
        strip_quantization(net)
        assert np.allclose(net.logits(x), y_float)

    def test_quantization_is_reasonably_accurate(self, calib):
        """8-bit dynamic fixed point stays close to float activations."""
        net = build_net()
        x = calib[:8]
        y_float = net.logits(x)
        NetworkQuantizer().quantize(net, calib)
        y_quant = net.logits(x)
        # pow2 weights are coarse; outputs correlate strongly regardless
        corr = np.corrcoef(y_float.ravel(), y_quant.ravel())[0, 1]
        assert corr > 0.7
