"""Student-teacher loss: Eq. 1 values and Eq. 2 gradient approximation."""

import numpy as np
import pytest

from repro.core.distill import DistillationLoss, soften
from repro.nn.loss import softmax


class TestSoften:
    def test_high_temperature_flattens(self, rng):
        z = rng.normal(size=(4, 10)) * 5
        p_hot = soften(z, tau=100.0)
        assert np.all(np.abs(p_hot - 0.1) < 0.02)

    def test_tau_one_is_softmax(self, rng):
        z = rng.normal(size=(3, 5))
        assert np.allclose(soften(z, 1.0), softmax(z))

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            soften(np.zeros((1, 2)), 0.0)


class TestLossValue:
    def test_matches_manual_computation(self, rng):
        tau, beta = 4.0, 0.5
        loss = DistillationLoss(tau=tau, beta=beta)
        z_s = rng.normal(size=(3, 5))
        z_t = rng.normal(size=(3, 5))
        y = np.array([0, 2, 4])
        loss.set_teacher_logits(z_t)
        value = loss.forward(z_s, y)

        p_s = softmax(z_s)
        hard = -np.log(p_s[np.arange(3), y]).mean()
        p_t_soft = softmax(z_t / tau)
        p_s_soft = softmax(z_s / tau)
        soft = -(p_t_soft * np.log(p_s_soft)).sum(axis=1).mean()
        assert np.isclose(value, hard + beta * soft)

    def test_beta_zero_is_plain_cross_entropy(self, rng):
        loss = DistillationLoss(tau=20.0, beta=0.0)
        z_s = rng.normal(size=(4, 6))
        loss.set_teacher_logits(rng.normal(size=(4, 6)))
        y = np.array([1, 2, 3, 0])
        value = loss.forward(z_s, y)
        p = softmax(z_s)
        assert np.isclose(value, -np.log(p[np.arange(4), y]).mean())

    def test_matching_teacher_minimizes_soft_term(self, rng):
        """Soft term is minimal (equal to teacher entropy) when z_s == z_t."""
        loss = DistillationLoss(tau=5.0, beta=1.0)
        z_t = rng.normal(size=(2, 4))
        y = np.array([0, 1])
        loss.set_teacher_logits(z_t)
        matched = loss.forward(z_t.copy(), y)
        loss.set_teacher_logits(z_t)
        mismatched = loss.forward(z_t + rng.normal(size=(2, 4)), y)
        # subtract the common hard term by comparing to beta=0 losses
        plain = DistillationLoss(tau=5.0, beta=0.0)
        plain.set_teacher_logits(z_t)
        hard_matched = plain.forward(z_t.copy(), y)
        soft_matched = matched - hard_matched
        p_t = softmax(z_t / 5.0)
        teacher_entropy = -(p_t * np.log(p_t)).sum(axis=1).mean()
        assert soft_matched >= teacher_entropy - 1e-9
        assert np.isclose(soft_matched, teacher_entropy, atol=1e-9)
        del mismatched  # mismatched case covered by gradient tests

    def test_requires_teacher_logits(self, rng):
        loss = DistillationLoss()
        with pytest.raises(RuntimeError):
            loss.forward(rng.normal(size=(2, 3)), np.array([0, 1]))

    def test_shape_mismatch_rejected(self, rng):
        loss = DistillationLoss()
        loss.set_teacher_logits(rng.normal(size=(2, 4)))
        with pytest.raises(ValueError):
            loss.forward(rng.normal(size=(2, 3)), np.array([0, 1]))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            DistillationLoss(tau=0.0)
        with pytest.raises(ValueError):
            DistillationLoss(beta=-1.0)


class TestGradient:
    def test_numerical_gradient(self, rng, gradcheck):
        loss = DistillationLoss(tau=3.0, beta=0.4)
        z_s = rng.normal(size=(3, 5))
        z_t = rng.normal(size=(3, 5))
        y = np.array([0, 1, 2])

        def f():
            loss.set_teacher_logits(z_t)
            return loss.forward(z_s, y)

        f()
        grad = loss.backward()
        num = gradcheck(f, z_s)
        assert np.allclose(grad, num, atol=1e-6)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            DistillationLoss().backward()

    def test_eq2_large_tau_approximation(self, rng):
        """For tau >> |z| and zero-mean logits, the soft-term gradient
        approaches beta/(N*tau^2) * (z_s - z_t) — Eq. 2 of the paper."""
        tau, beta = 100.0, 0.2
        loss = DistillationLoss(tau=tau, beta=beta)
        z_s = rng.normal(size=(4, 10)) * 0.5
        z_s -= z_s.mean(axis=1, keepdims=True)
        z_t = rng.normal(size=(4, 10)) * 0.5
        z_t -= z_t.mean(axis=1, keepdims=True)
        y = np.zeros(4, dtype=int)
        loss.set_teacher_logits(z_t)
        loss.forward(z_s, y)
        grad = loss.backward() * 4  # per-sample gradient

        # subtract the hard-label part to isolate the soft term
        p_hard = softmax(z_s)
        hard_grad = p_hard.copy()
        hard_grad[np.arange(4), y] -= 1.0
        soft_grad = grad - hard_grad

        approx = loss.approx_soft_gradient(z_s, z_t)
        # relative agreement within a few percent at tau = 100
        denom = np.abs(approx).max()
        assert np.abs(soft_grad - approx).max() / denom < 0.05

    def test_soft_gradient_vanishes_when_student_matches_teacher(self, rng):
        loss = DistillationLoss(tau=10.0, beta=1.0)
        z = rng.normal(size=(3, 6))
        y = np.array([0, 1, 2])
        loss.set_teacher_logits(z.copy())
        loss.forward(z, y)
        grad = loss.backward()
        plain = DistillationLoss(tau=10.0, beta=0.0)
        plain.set_teacher_logits(z.copy())
        plain.forward(z, y)
        hard_grad = plain.backward()
        assert np.allclose(grad, hard_grad, atol=1e-12)
