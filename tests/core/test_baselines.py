"""Binary / ternary / fixed-point baseline weight quantizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import (
    BinaryWeightQuantizer,
    FixedPointWeightQuantizer,
    TernaryWeightQuantizer,
)


class TestBinary:
    def test_unscaled_is_pure_sign(self, rng):
        q = BinaryWeightQuantizer(scaled=False)
        w = rng.normal(size=50)
        out = q(w)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_scaled_uses_mean_magnitude(self, rng):
        q = BinaryWeightQuantizer(scaled=True)
        w = rng.normal(scale=0.2, size=200)
        out = q(w)
        alpha = np.abs(w).mean()
        assert np.allclose(np.abs(out), alpha)

    def test_sign_preserved(self, rng):
        q = BinaryWeightQuantizer()
        w = rng.normal(size=100)
        assert np.array_equal(np.sign(q(w)), np.where(w >= 0, 1.0, -1.0))

    def test_scaled_minimizes_l2_among_scales(self, rng):
        """alpha = E|w| is the L2-optimal symmetric scale for sign(w)."""
        w = rng.normal(size=500)
        q = BinaryWeightQuantizer(scaled=True)
        err_opt = np.sum((w - q(w)) ** 2)
        for alpha in (0.5, 1.0, 2.0):
            err = np.sum((w - alpha * np.sign(w)) ** 2)
            assert err_opt <= err + 1e-9

    def test_dtype_preserved(self):
        out = BinaryWeightQuantizer()(np.array([0.3], dtype=np.float32))
        assert out.dtype == np.float32


class TestTernary:
    def test_three_levels(self, rng):
        q = TernaryWeightQuantizer()
        w = rng.normal(size=300)
        out = q(w)
        assert len(np.unique(np.round(out, 10))) <= 3

    def test_small_weights_become_zero(self, rng):
        q = TernaryWeightQuantizer(delta_ratio=0.7)
        w = rng.normal(size=500)
        out = q(w)
        delta = 0.7 * np.abs(w).mean()
        assert np.all(out[np.abs(w) <= delta] == 0.0)
        assert np.all(out[np.abs(w) > delta] != 0.0)

    def test_unscaled_levels_are_unit(self, rng):
        q = TernaryWeightQuantizer(scaled=False)
        out = q(rng.normal(size=100))
        assert set(np.unique(out)) <= {-1.0, 0.0, 1.0}

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            TernaryWeightQuantizer(delta_ratio=0.0)

    def test_sparsity_increases_with_threshold(self, rng):
        w = rng.normal(size=1000)
        loose = TernaryWeightQuantizer(delta_ratio=0.3)(w)
        tight = TernaryWeightQuantizer(delta_ratio=1.5)(w)
        assert (tight == 0).sum() > (loose == 0).sum()


class TestFixedPointWeights:
    def test_values_on_grid(self, rng):
        q = FixedPointWeightQuantizer(bits=8)
        w = rng.normal(scale=0.1, size=200)
        out = q(w)
        from repro.core.dfp import choose_fraction_length

        f = choose_fraction_length(w, bits=8)
        scaled = out * 2.0**f
        assert np.allclose(scaled, np.rint(scaled))

    def test_more_bits_less_error(self, rng):
        w = rng.normal(scale=0.1, size=500)
        err4 = np.abs(FixedPointWeightQuantizer(4)(w) - w).max()
        err8 = np.abs(FixedPointWeightQuantizer(8)(w) - w).max()
        assert err8 < err4

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            FixedPointWeightQuantizer(bits=1)

    @given(st.lists(st.floats(-1, 1, allow_nan=False), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_error_bounded_by_half_step(self, values):
        w = np.array(values)
        if np.abs(w).max() == 0:
            return
        q = FixedPointWeightQuantizer(bits=8)
        out = q(w)
        from repro.core.dfp import choose_fraction_length

        f = choose_fraction_length(w, bits=8)
        assert np.abs(out - w).max() <= 2.0 ** -(f + 1) + 1e-12


class TestBaselineIntegration:
    def test_baseline_quantizer_attaches(self, trained_small_net, small_data):
        from repro.core.quantizer import NetworkQuantizer

        train, _ = small_data
        net = trained_small_net.clone()
        quantizer = NetworkQuantizer(weight_quantizer_factory=TernaryWeightQuantizer)
        quantizer.quantize(net, train.x[:64])
        assert isinstance(net.layer("conv1").weight_quantizer, TernaryWeightQuantizer)

    def test_baseline_network_rejected_by_deploy(self, trained_small_net, small_data):
        from repro.core.mfdfp import deploy
        from repro.core.quantizer import NetworkQuantizer

        train, _ = small_data
        net = trained_small_net.clone()
        quantizer = NetworkQuantizer(weight_quantizer_factory=BinaryWeightQuantizer)
        plan = quantizer.quantize(net, train.x[:64])
        with pytest.raises(ValueError, match="power-of-two"):
            deploy(net, plan)

    def test_pow2_not_worse_than_binary(self, trained_small_net, small_data):
        """The paper's premise: 8 exponent levels beat 1-bit weights when
        nothing is fine-tuned."""
        from repro.core.quantizer import NetworkQuantizer
        from repro.nn import error_rate

        train, test = small_data
        calib = train.x[:128]
        pow2_net = trained_small_net.clone()
        NetworkQuantizer().quantize(pow2_net, calib)
        binary_net = trained_small_net.clone()
        NetworkQuantizer(weight_quantizer_factory=BinaryWeightQuantizer).quantize(
            binary_net, calib
        )
        assert error_rate(pow2_net, test) <= error_rate(binary_net, test) + 0.02


class TestFixed8CostPoint:
    def test_sits_between_fp32_and_mfdfp(self):
        from repro.hw.cost import CostModel

        model = CostModel()
        fp32 = model.evaluate("fp32", 1)
        fixed8 = model.evaluate("fixed8", 1)
        mfdfp = model.evaluate("mfdfp", 1)
        assert mfdfp.area_mm2 < fixed8.area_mm2 < fp32.area_mm2
        assert mfdfp.power_mw < fixed8.power_mw < fp32.power_mw

    def test_shift_datapath_beats_int8_multipliers(self):
        """The marginal benefit of the paper's core trick: vs an int8
        multiplier design, shifts still save a meaningful fraction."""
        from repro.hw.cost import CostModel

        model = CostModel()
        fixed8 = model.evaluate("fixed8", 1)
        mfdfp = model.evaluate("mfdfp", 1)
        assert 1.0 - mfdfp.area_mm2 / fixed8.area_mm2 > 0.10
        assert 1.0 - mfdfp.power_mw / fixed8.power_mw > 0.15
