"""Property tests: BatchedEngine ≡ eager executor over random op spaces.

For every executable layer kind, seeded random draws of geometry
(shapes, kernels, strides, padding, groups), fraction lengths and 4-bit
weight codes build single-op deployed networks; the compiled engine
must match the eager reference bit-for-bit for every batch size, and
batching itself must not change any value (a batch run equals the
concatenation of solo runs).  The engine-cache hit path is part of the
property: equal-content artifacts must yield the *same object* and the
same outputs.
"""

import numpy as np
import pytest

from repro.core.engine import (
    BatchedEngine,
    EngineCache,
    engine_fingerprint,
    execute_deployed,
)
from repro.core.mfdfp import DeployedLayer, DeployedMFDFP

SEEDS = range(6)
BATCH_SIZES = (1, 3, 17)


def _fracs(rng):
    return int(rng.integers(0, 8)), int(rng.integers(0, 8))


def _random_conv(rng):
    in_frac, out_frac = _fracs(rng)
    groups = int(rng.choice([1, 2]))
    cin = groups * int(rng.integers(1, 4))
    cout = groups * int(rng.integers(1, 4))
    h, w = (int(v) for v in rng.integers(5, 10, size=2))
    k = int(rng.integers(1, 4))
    stride = int(rng.integers(1, 3))
    pad = int(rng.integers(0, 3))
    op = DeployedLayer(
        kind="conv",
        name="conv_prop",
        in_frac=in_frac,
        out_frac=out_frac,
        weight_codes=rng.integers(0, 16, size=(cout, cin // groups, k, k)),
        bias_int=rng.integers(-4000, 4000, size=cout) if rng.integers(2) else None,
        activation=str(rng.choice(["none", "relu"])),
        in_channels=cin,
        out_channels=cout,
        kernel_size=k,
        stride=stride,
        pad=pad,
        groups=groups,
    )
    return op, (cin, h, w)


def _random_dense(rng):
    in_frac, out_frac = _fracs(rng)
    fin = int(rng.integers(1, 40))
    fout = int(rng.integers(1, 10))
    op = DeployedLayer(
        kind="dense",
        name="dense_prop",
        in_frac=in_frac,
        out_frac=out_frac,
        weight_codes=rng.integers(0, 16, size=(fout, fin)),
        bias_int=rng.integers(-4000, 4000, size=fout) if rng.integers(2) else None,
        activation=str(rng.choice(["none", "relu"])),
        in_features=fin,
        out_features=fout,
    )
    return op, (fin,)


def _random_pool(kind):
    def draw(rng):
        in_frac, out_frac = _fracs(rng)
        c = int(rng.integers(1, 4))
        h, w = (int(v) for v in rng.integers(5, 10, size=2))
        k = int(rng.integers(2, 4))
        op = DeployedLayer(
            kind=kind,
            name=f"{kind}_prop",
            in_frac=in_frac,
            out_frac=out_frac,
            kernel_size=k,
            stride=int(rng.integers(1, 3)),
            pad=int(rng.integers(0, 2)),
            ceil_mode=bool(rng.integers(2)),
        )
        return op, (c, h, w)

    return draw


def _random_flatten(rng):
    in_frac = int(rng.integers(0, 8))
    c, h, w = (int(v) for v in rng.integers(2, 6, size=3))
    op = DeployedLayer(kind="flatten", name="flat_prop", in_frac=in_frac, out_frac=in_frac)
    return op, (c, h, w)


DRAWS = {
    "conv": _random_conv,
    "dense": _random_dense,
    "maxpool": _random_pool("maxpool"),
    "avgpool": _random_pool("avgpool"),
    "flatten": _random_flatten,
}


def _deployed_single_op(kind, seed):
    # stable per-kind offset (hash() is randomized across processes)
    rng = np.random.default_rng(1000 * seed + sum(kind.encode()))
    op, in_shape = DRAWS[kind](rng)
    deployed = DeployedMFDFP(
        name=f"prop_{kind}_{seed}",
        input_shape=in_shape,
        input_frac=op.in_frac,
        bits=8,
        ops=[op],
    )
    return deployed, rng


@pytest.mark.parametrize("kind", sorted(DRAWS))
@pytest.mark.parametrize("seed", SEEDS)
class TestEngineMatchesReference:
    def test_bit_identical_roundtrip(self, kind, seed):
        deployed, rng = _deployed_single_op(kind, seed)
        engine = BatchedEngine(deployed)
        for n in BATCH_SIZES:
            x = rng.uniform(-2.0, 2.0, size=(n,) + deployed.input_shape)
            reference = execute_deployed(deployed, x)
            codes = engine.run_codes(x)
            assert codes.dtype.kind in "iu"
            assert np.array_equal(codes, reference), f"{kind} seed={seed} N={n}"
            scale = 2.0 ** (-deployed.ops[-1].out_frac)
            assert np.array_equal(engine.run(x), codes.astype(np.float64) * scale)

    def test_batching_never_changes_values(self, kind, seed):
        deployed, rng = _deployed_single_op(kind, seed)
        engine = BatchedEngine(deployed)
        x = rng.uniform(-2.0, 2.0, size=(7,) + deployed.input_shape)
        solo = np.concatenate([engine.run_codes(x[i : i + 1]) for i in range(7)])
        assert np.array_equal(engine.run_codes(x), solo)


@pytest.mark.parametrize("kind", sorted(DRAWS))
class TestEngineCacheHitPath:
    def test_cache_hit_same_object_same_outputs(self, kind):
        deployed, rng = _deployed_single_op(kind, seed=0)
        cache = EngineCache()
        engine = cache.get(deployed)
        x = rng.uniform(-2.0, 2.0, size=(5,) + deployed.input_shape)
        baseline = engine.run(x)
        hit = cache.get(deployed)
        assert hit is engine
        assert np.array_equal(hit.run(x), baseline)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_equal_content_distinct_objects_share_engine(self, kind):
        first, _ = _deployed_single_op(kind, seed=0)
        rebuilt, rng = _deployed_single_op(kind, seed=0)
        assert first is not rebuilt
        assert engine_fingerprint(first) == engine_fingerprint(rebuilt)
        cache = EngineCache()
        engine = cache.get(first)
        assert cache.get(rebuilt) is engine
        x = rng.uniform(-2.0, 2.0, size=(4,) + first.input_shape)
        assert np.array_equal(engine.run(x), execute_deployed(rebuilt, x) * 2.0 ** (-rebuilt.ops[-1].out_frac))

    def test_different_content_gets_different_engine(self, kind):
        a, _ = _deployed_single_op(kind, seed=1)
        b, _ = _deployed_single_op(kind, seed=2)
        assert engine_fingerprint(a) != engine_fingerprint(b)
        cache = EngineCache()
        assert cache.get(a) is not cache.get(b)


def test_cache_hit_accounting_is_exact_under_threads():
    """Regression (lock-discipline): the hit counter is bumped inside
    the cache mutex (``_lookup_locked``), so N concurrent lookups of a
    compiled engine record exactly N-1 hits and 1 miss — no dropped
    increments from racing read-modify-writes."""
    from concurrent.futures import ThreadPoolExecutor

    deployed, _ = _deployed_single_op("dense", seed=0)
    cache = EngineCache()
    total = 64
    with ThreadPoolExecutor(8) as pool:
        engines = list(pool.map(lambda _: cache.get(deployed), range(total)))
    assert all(e is engines[0] for e in engines)
    assert cache.misses == 1
    assert cache.hits == total - 1


def test_fingerprint_memo_is_not_inherited_by_mutated_copies():
    """Regression: the fault injector deep-copies then mutates; the copy
    must not reuse the original's memoized digest (stale-cache hazard)."""
    import copy

    deployed, _ = _deployed_single_op("dense", seed=3)
    original = engine_fingerprint(deployed)
    faulty = copy.deepcopy(deployed)
    faulty.ops[0].weight_codes = faulty.ops[0].weight_codes ^ 1  # flip LSBs
    assert engine_fingerprint(faulty) != original
    assert engine_fingerprint(deployed) == original  # memo still intact
    cache = EngineCache()
    assert cache.get(deployed) is not cache.get(faulty)
