"""Network zoo: exact parameter counts (Table 3 anchors) and geometry."""

import numpy as np
import pytest

from repro.nn.layers import LocalResponseNorm
from repro.zoo import alexnet, alexnet_small, cifar10_full, cifar10_small


class TestCifar10Full:
    def test_parameter_count_matches_table3(self):
        """89,578 params x 32 bits = 0.3417 MB, exactly Table 3's value."""
        net = cifar10_full()
        assert net.param_count() == 89_578
        assert net.param_count() * 4 / 2**20 == pytest.approx(0.3417, abs=5e-5)

    def test_layer_geometry(self):
        shapes = dict(cifar10_full().layer_shapes())
        assert shapes["conv1"] == (32, 32, 32)
        assert shapes["pool1"] == (32, 16, 16)
        assert shapes["pool2"] == (32, 8, 8)
        assert shapes["pool3"] == (64, 4, 4)
        assert shapes["ip1"] == (10,)

    def test_forward_shape(self, rng):
        net = cifar10_full()
        assert net.forward(rng.normal(size=(2, 3, 32, 32)).astype(np.float32)).shape == (2, 10)

    def test_lrn_variant(self):
        net = cifar10_full(include_lrn=True)
        assert any(isinstance(l, LocalResponseNorm) for l in net.layers)
        assert net.param_count() == 89_578  # LRN adds no parameters

    def test_no_lrn_by_default(self):
        assert not any(isinstance(l, LocalResponseNorm) for l in cifar10_full().layers)

    def test_custom_class_count(self):
        net = cifar10_full(num_classes=100)
        assert dict(net.layer_shapes())["ip1"] == (100,)


class TestAlexNet:
    def test_parameter_count_matches_table3(self):
        """62,378,344 params x 32 bits = 237.95 MB, exactly Table 3."""
        net = alexnet()
        assert net.param_count() == 62_378_344
        assert net.param_count() * 4 / 2**20 == pytest.approx(237.95, abs=0.005)

    def test_layer_geometry(self):
        shapes = dict(alexnet().layer_shapes())
        assert shapes["conv1"] == (96, 55, 55)
        assert shapes["pool1"] == (96, 27, 27)
        assert shapes["pool2"] == (256, 13, 13)
        assert shapes["pool5"] == (256, 6, 6)
        assert shapes["fc6"] == (4096,)
        assert shapes["fc8"] == (1000,)

    def test_dropout_optional(self):
        with_do = alexnet(include_dropout=True)
        without = alexnet(include_dropout=False)
        assert len(with_do.layers) == len(without.layers) + 2
        assert with_do.param_count() == without.param_count()

    def test_lrn_variant_adds_two_layers(self):
        assert len(alexnet(include_lrn=True).layers) == len(alexnet().layers) + 2


class TestScaledVariants:
    def test_cifar10_small_forward(self, rng):
        net = cifar10_small(size=16)
        x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        assert net.forward(x).shape == (2, 10)

    def test_cifar10_small_much_smaller(self):
        assert cifar10_small().param_count() < cifar10_full().param_count() / 10

    def test_cifar10_small_size_validation(self):
        with pytest.raises(ValueError):
            cifar10_small(size=10)

    def test_alexnet_small_forward(self, rng):
        net = alexnet_small(num_classes=20, size=32)
        x = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        assert net.forward(x).shape == (2, 20)

    def test_alexnet_small_size_validation(self):
        with pytest.raises(ValueError):
            alexnet_small(size=12)

    def test_seeded_builds_reproducible(self, rng):
        a = cifar10_small(rng=np.random.default_rng(5))
        b = cifar10_small(rng=np.random.default_rng(5))
        x = rng.normal(size=(1, 3, 16, 16)).astype(np.float32)
        assert np.allclose(a.logits(x), b.logits(x))


class TestDeployability:
    """Every zoo network must survive the deploy() transformation."""

    @pytest.mark.parametrize(
        "builder,shape",
        [
            (lambda: cifar10_small(size=16, dtype=np.float64), (3, 16, 16)),
            (lambda: alexnet_small(size=16, dtype=np.float64), (3, 16, 16)),
        ],
    )
    def test_deploys_cleanly(self, rng, builder, shape):
        from repro.core.mfdfp import MFDFPNetwork

        net = builder()
        calib = rng.normal(size=(8,) + shape)
        dep = MFDFPNetwork.from_float(net, calib).deploy()
        assert dep.parameter_count() == net.param_count()

    def test_cifar10_full_deploys(self, rng):
        from repro.core.mfdfp import MFDFPNetwork

        net = cifar10_full(dtype=np.float64)
        calib = rng.normal(size=(4, 3, 32, 32))
        dep = MFDFPNetwork.from_float(net, calib).deploy()
        assert [op.kind for op in dep.ops] == [
            "conv", "maxpool", "conv", "avgpool", "conv", "avgpool", "flatten", "dense",
        ]
