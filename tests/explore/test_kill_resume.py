"""SIGKILL mid-exploration, resume in a fresh process, bit-identical frontier.

The ISSUE acceptance gate for the explorer: a search killed hard (SIGKILL,
no cleanup, no atexit) partway through its rungs must, when resumed from
its checkpoints in a brand-new interpreter, land on exactly the frontier
and evaluation set the uninterrupted run produces.  The kill is injected
through a checkpointer subclass that SIGKILLs its own process after a
fixed number of saves — so death lands between chunk boundaries, with
completed work persisted and in-flight work lost.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Shared problem + dump helpers, inlined into every driver namespace.
PROBLEM_SRC = textwrap.dedent(
    """
    import numpy as np
    from repro.datasets import cifar10_surrogate
    from repro.explore import DesignSpace, ExploreConfig, explore
    from repro.zoo import cifar10_small

    SPACE = DesignSpace(bits=(4, 8), min_exps=(-7, -9), num_pus=(1,), technologies=("65nm",))
    CONFIG = ExploreConfig(seed=11, rung_epochs=(0,), final_epochs=1, checkpoint_every=1)

    def make_problem():
        train, test = cifar10_surrogate(n_train=96, n_test=48, size=8, seed=2)
        net = cifar10_small(size=8, width=4, rng=np.random.default_rng(0))
        return net, train, test, train.x[:32]

    def run(checkpoint=None, jobs=1, backend="thread"):
        net, train, test, calib = make_problem()
        return explore(net, train, test, calib, SPACE, CONFIG,
                       jobs=jobs, backend=backend, checkpoint=checkpoint)

    def dump(result, path):
        rows = result.evaluations
        np.savez(
            path,
            point_index=np.array([e.point.index for e in rows], dtype=np.int64),
            rung=np.array([e.rung for e in rows], dtype=np.int64),
            full=np.array([e.full for e in rows], dtype=np.uint8),
            accuracy=np.array([e.accuracy for e in rows], dtype=np.float64),
            energy_uj=np.array([e.energy_uj for e in rows], dtype=np.float64),
            area_mm2=np.array([e.area_mm2 for e in rows], dtype=np.float64),
            frontier=np.array([e.point.index for e in result.frontier], dtype=np.int64),
        )
    """
)


def run_driver(tmp_path: Path, name: str, body: str, *, expect_kill: bool = False) -> None:
    script = tmp_path / f"{name}.py"
    script.write_text(PROBLEM_SRC + textwrap.dedent(body))
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    if expect_kill:
        assert proc.returncode == -9, (
            f"driver {name} should have been SIGKILLed, exited "
            f"{proc.returncode}:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
        )
    else:
        assert proc.returncode == 0, (
            f"driver {name} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
        )


def load_result(path: Path) -> dict:
    with np.load(path) as data:
        return {k: data[k] for k in data.files}


class TestKillResume:
    def test_sigkilled_exploration_resumes_bit_identically(self, tmp_path):
        # Reference: uninterrupted, fresh process, no checkpointing.
        run_driver(
            tmp_path,
            "reference",
            """
            dump(run(), "reference.npz")
            """,
        )

        # Part 1: checkpoint after every evaluation, SIGKILL after the
        # second save — rung 0 is half done, nothing full has run.
        run_driver(
            tmp_path,
            "killed",
            """
            import os, signal
            from repro.io import ExplorationCheckpointer

            class KillingCheckpointer(ExplorationCheckpointer):
                saves = 0
                def save(self, evaluations, space, config):
                    path = super().save(evaluations, space, config)
                    KillingCheckpointer.saves += 1
                    if KillingCheckpointer.saves >= 2:
                        os.kill(os.getpid(), signal.SIGKILL)
                    return path

            run(checkpoint=KillingCheckpointer("ckpt"))
            raise SystemExit("unreachable: the exploration should have been killed")
            """,
            expect_kill=True,
        )
        saved = list((tmp_path / "ckpt").glob("exploration_*.npz"))
        assert saved, "the killed run persisted no checkpoints"

        # Part 2: fresh interpreter resumes from the survivors' checkpoints
        # and must reproduce the reference exactly — including rows that
        # were restored rather than recomputed.
        run_driver(
            tmp_path,
            "resumed",
            """
            from repro.io import ExplorationCheckpointer
            ckpt = ExplorationCheckpointer("ckpt")
            restored = len(ckpt.load(SPACE, CONFIG))
            assert restored >= 2, f"expected >=2 restored rows, got {restored}"
            dump(run(checkpoint=ckpt), "resumed.npz")
            """,
        )

        ref = load_result(tmp_path / "reference.npz")
        resumed = load_result(tmp_path / "resumed.npz")
        assert set(ref) == set(resumed)
        for key in sorted(ref):
            assert np.array_equal(ref[key], resumed[key]), f"{key} differs after kill+resume"

    def test_resume_on_process_backend_matches_reference(self, tmp_path):
        """Cross-backend satellite: the resumed half runs on jobs=2/process."""
        run_driver(
            tmp_path,
            "reference",
            """
            dump(run(), "reference.npz")
            """,
        )
        run_driver(
            tmp_path,
            "killed",
            """
            import os, signal
            from repro.io import ExplorationCheckpointer

            class KillingCheckpointer(ExplorationCheckpointer):
                saves = 0
                def save(self, evaluations, space, config):
                    path = super().save(evaluations, space, config)
                    KillingCheckpointer.saves += 1
                    if KillingCheckpointer.saves >= 3:
                        os.kill(os.getpid(), signal.SIGKILL)
                    return path

            run(checkpoint=KillingCheckpointer("ckpt"))
            """,
            expect_kill=True,
        )
        run_driver(
            tmp_path,
            "resumed",
            """
            from repro.io import ExplorationCheckpointer
            result = run(checkpoint=ExplorationCheckpointer("ckpt"), jobs=2, backend="process")
            dump(result, "resumed.npz")
            """,
        )
        ref = load_result(tmp_path / "reference.npz")
        resumed = load_result(tmp_path / "resumed.npz")
        for key in sorted(ref):
            assert np.array_equal(ref[key], resumed[key]), f"{key} differs after kill+resume"
