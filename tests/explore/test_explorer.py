"""The successive-halving explorer: pruning, determinism, checkpointing."""

import numpy as np
import pytest

from repro.explore import (
    DesignSpace,
    ExplorationResult,
    ExploreConfig,
    ExploreConfigError,
    explore,
)
from repro.explore.explorer import _cost_metrics, _cost_twin_survivors, _member_rng
from repro.hw.cost import CostModel, NPUDesign
from repro.io import ArtifactSchemaError, ExplorationCheckpointer

SPACE = DesignSpace(bits=(4, 8), min_exps=(-7,), num_pus=(1, 2), technologies=("65nm",))
CONFIG = ExploreConfig(seed=5, rung_epochs=(0,), final_epochs=1, checkpoint_every=2)


@pytest.fixture(scope="module")
def problem(trained_small_net, small_data):
    train, test = small_data
    return {"net": trained_small_net, "train": train, "test": test, "calib": train.x[:64]}


@pytest.fixture(scope="module")
def reference(problem):
    """The jobs=1 thread-backend exploration every variant must match."""
    return explore(
        problem["net"], problem["train"], problem["test"], problem["calib"],
        SPACE, CONFIG, jobs=1,
    )


def evaluation_key(result: ExplorationResult) -> list:
    return [
        (e.point.index, e.rung, e.accuracy, e.area_mm2, e.power_mw, e.latency_us, e.energy_uj)
        for e in result.evaluations
    ]


class TestExploreConfig:
    def test_defaults_valid(self):
        config = ExploreConfig()
        assert config.final_rung == len(config.rung_epochs)

    def test_validation(self):
        with pytest.raises(ExploreConfigError, match="seed"):
            ExploreConfig(seed=1.5)
        with pytest.raises(ExploreConfigError, match="rung_epochs"):
            ExploreConfig(rung_epochs=(-1,))
        with pytest.raises(ExploreConfigError, match="non-decreasing"):
            ExploreConfig(rung_epochs=(2, 1))
        with pytest.raises(ExploreConfigError, match="final_epochs"):
            ExploreConfig(final_epochs=0)
        with pytest.raises(ExploreConfigError, match="margin"):
            ExploreConfig(margin=-0.1)
        with pytest.raises(ExploreConfigError, match="margin"):
            ExploreConfig(margin=float("nan"))
        with pytest.raises(ExploreConfigError, match="checkpoint_every"):
            ExploreConfig(checkpoint_every=0)

    def test_spec_excludes_resume_irrelevant_knobs(self):
        """checkpoint_every changes save cadence, never results — two runs
        differing only there must share checkpoints."""
        a = ExploreConfig(checkpoint_every=1).spec()
        b = ExploreConfig(checkpoint_every=64).spec()
        assert a == b


class TestExplorationShape:
    def test_structure_and_accounting(self, reference):
        # rung 0 evaluates all 4 points; the final rung only survivors.
        assert reference.survivors_per_rung[-1] == reference.full_evaluations
        assert reference.total_evaluations == len(SPACE) + reference.full_evaluations
        assert all(e.full == (e.rung == CONFIG.final_rung) for e in reference.evaluations)
        # canonical order: rung-major, then point index
        keys = [(e.rung, e.point.index) for e in reference.evaluations]
        assert keys == sorted(keys)

    def test_frontier_is_full_fidelity_and_nondominated(self, reference):
        assert reference.frontier
        assert all(e.full for e in reference.frontier)
        for e in reference.frontier:
            for other in reference.frontier:
                if other is e:
                    continue
                dominated = (
                    other.accuracy >= e.accuracy
                    and other.energy_uj <= e.energy_uj
                    and other.area_mm2 <= e.area_mm2
                    and (
                        other.accuracy > e.accuracy
                        or other.energy_uj < e.energy_uj
                        or other.area_mm2 < e.area_mm2
                    )
                )
                assert not dominated

    def test_rows_match_frontier(self, reference):
        rows = reference.rows()
        assert [r["label"] for r in rows] == [e.point.label for e in reference.frontier]
        assert all(set(r) >= {"accuracy", "energy_uj", "area_mm2", "latency_us"} for r in rows)

    def test_cost_metrics_match_cost_model(self, problem):
        point = SPACE.points()[0]
        area, power, latency, energy = _cost_metrics(problem["net"], point, {})
        breakdown = CostModel().evaluate_design(
            NPUDesign(activation_bits=point.bits, num_pus=point.num_pus)
        )
        assert area == breakdown.area_mm2
        assert power == breakdown.power_mw
        assert energy == pytest.approx(power * 1e-3 * latency)

    def test_member_rng_keyed_on_quantization_identity(self):
        # bits slowest axis, technologies fastest: indexes 0/1 differ only
        # in technology, 0/2 differ in bits.
        p = DesignSpace(
            bits=(4, 8), min_exps=(-7,), num_pus=(1,), technologies=("65nm", "28nm")
        ).points()
        draw = lambda point, rung=0, member=0: _member_rng(5, rung, point, member).integers(
            0, 2**63, 4
        )
        assert np.array_equal(draw(p[0]), draw(p[1]))  # cost-only axis: same stream
        assert not np.array_equal(draw(p[0]), draw(p[2]))  # different quantization
        assert not np.array_equal(draw(p[0]), draw(p[0], member=1))
        assert not np.array_equal(draw(p[0]), draw(p[0], rung=1))
        assert np.array_equal(draw(p[0]), draw(p[0]))


class TestPruning:
    def test_exhaustive_evaluates_everything(self, problem, reference):
        exhaustive = explore(
            problem["net"], problem["train"], problem["test"], problem["calib"],
            SPACE, ExploreConfig(seed=5, rung_epochs=(0,), final_epochs=1, prune=False),
            jobs=2,
        )
        assert exhaustive.full_evaluations == len(SPACE)
        # Shared seed derivation: final-rung accuracies agree point-for-point
        pruned_final = {e.point.index: e.accuracy for e in reference.evaluations if e.full}
        exhaustive_final = {e.point.index: e.accuracy for e in exhaustive.evaluations if e.full}
        for index, acc in pruned_final.items():
            assert exhaustive_final[index] == acc
        # and the pruned frontier equals the exhaustive one on this problem
        assert [e.point for e in reference.frontier] == [e.point for e in exhaustive.frontier]

    def test_pruning_saves_full_pipelines(self, reference):
        assert reference.full_evaluations <= len(SPACE)


class TestCostTwinElimination:
    """Quantization-identical designs differing only in technology are
    settled on closed-form cost alone — margin pruning cannot do it
    (exact accuracy ties are inside any margin), so the explorer must."""

    def test_twin_survivors_keep_cost_pareto_set(self):
        space = DesignSpace(
            bits=(4,), min_exps=(-7,), num_pus=(1,), technologies=("65nm", "45nm", "28nm")
        )
        # (area, power, latency, energy): 0 dominates 2; 1 trades area for energy.
        costs = {0: (1.0, 0.0, 0.0, 5.0), 1: (0.5, 0.0, 0.0, 6.0), 2: (1.2, 0.0, 0.0, 5.5)}
        kept = _cost_twin_survivors(space.points(), costs)
        assert [p.index for p in kept] == [0, 1]

    def test_dominated_technology_twin_never_evaluated(self, problem):
        space = DesignSpace(
            bits=(4, 8), min_exps=(-7,), num_pus=(1,), technologies=("65nm", "28nm")
        )
        # A huge margin disables accuracy pruning entirely: every saved
        # pipeline below comes from twin elimination alone.
        config = ExploreConfig(seed=5, rung_epochs=(0,), final_epochs=1, margin=0.5)
        pruned = explore(
            problem["net"], problem["train"], problem["test"], problem["calib"],
            space, config,
        )
        # 28nm is cost-dominated at equal accuracy (FP32-anchored scaling),
        # so no evaluation — at any rung — is spent on it.
        assert {e.point.technology for e in pruned.evaluations} == {"65nm"}
        assert pruned.full_evaluations == len(space) // 2
        exhaustive = explore(
            problem["net"], problem["train"], problem["test"], problem["calib"],
            space, ExploreConfig(seed=5, rung_epochs=(0,), final_epochs=1, prune=False),
        )
        assert [e.point for e in pruned.frontier] == [e.point for e in exhaustive.frontier]


class TestDeterminism:
    """ISSUE satellite: Pareto set and every evaluated point bit-identical
    across jobs and backends."""

    def test_thread_jobs2_bit_identical(self, problem, reference):
        threaded = explore(
            problem["net"], problem["train"], problem["test"], problem["calib"],
            SPACE, CONFIG, jobs=2,
        )
        assert evaluation_key(threaded) == evaluation_key(reference)
        assert [e.point for e in threaded.frontier] == [e.point for e in reference.frontier]

    def test_process_jobs2_bit_identical(self, problem, reference):
        processed = explore(
            problem["net"], problem["train"], problem["test"], problem["calib"],
            SPACE, CONFIG, jobs=2, backend="process",
        )
        assert evaluation_key(processed) == evaluation_key(reference)
        assert [e.point for e in processed.frontier] == [e.point for e in reference.frontier]

    def test_technology_variants_measure_identical_accuracy(self, problem):
        """Technology is a cost-only axis: the same quantization evaluated
        for two silicon nodes must yield bit-identical accuracy (which is
        what lets pruning discard a dominated node without running it)."""
        space = DesignSpace(
            bits=(4,), min_exps=(-7,), num_pus=(1,), technologies=("65nm", "28nm")
        )
        result = explore(
            problem["net"], problem["train"], problem["test"], problem["calib"],
            space, ExploreConfig(seed=5, rung_epochs=(0,), final_epochs=1, prune=False),
        )
        by_tech = {e.point.technology: e for e in result.evaluations if e.full}
        assert by_tech["65nm"].accuracy == by_tech["28nm"].accuracy
        # FP32-anchored calibration: the SRAM-heavy MF-DFP datapath scales
        # *worse* than the baseline at advanced nodes, so 65nm dominates.
        assert by_tech["65nm"].area_mm2 < by_tech["28nm"].area_mm2
        assert by_tech["65nm"].energy_uj < by_tech["28nm"].energy_uj
        # and the exact frontier keeps only the dominating node
        assert [e.point.technology for e in result.frontier] == ["65nm"]


class TestCheckpointResume:
    def test_fresh_checkpointed_run_matches_reference(self, problem, reference, tmp_path):
        ckpt = ExplorationCheckpointer(tmp_path / "ckpt")
        first = explore(
            problem["net"], problem["train"], problem["test"], problem["calib"],
            SPACE, CONFIG, jobs=1, checkpoint=ckpt,
        )
        assert evaluation_key(first) == evaluation_key(reference)
        # a second run restores every row: bit-identical, no re-evaluation
        resumed = explore(
            problem["net"], problem["train"], problem["test"], problem["calib"],
            SPACE, CONFIG, jobs=2, backend="process", checkpoint=ckpt,
        )
        assert evaluation_key(resumed) == evaluation_key(reference)
        assert [e.point for e in resumed.frontier] == [e.point for e in reference.frontier]

    def test_checkpoint_refuses_other_space_or_config(self, problem, tmp_path):
        ckpt = ExplorationCheckpointer(tmp_path / "ckpt")
        explore(
            problem["net"], problem["train"], problem["test"], problem["calib"],
            SPACE, CONFIG, jobs=1, checkpoint=ckpt,
        )
        other_space = DesignSpace(bits=(8,), min_exps=(-7,), num_pus=(1,))
        with pytest.raises(ArtifactSchemaError, match="design space"):
            explore(
                problem["net"], problem["train"], problem["test"], problem["calib"],
                other_space, CONFIG, jobs=1, checkpoint=ckpt,
            )
        other_config = ExploreConfig(seed=6, rung_epochs=(0,), final_epochs=1)
        with pytest.raises(ArtifactSchemaError, match="config"):
            explore(
                problem["net"], problem["train"], problem["test"], problem["calib"],
                SPACE, other_config, jobs=1, checkpoint=ckpt,
            )
