"""DesignSpace: canonical enumeration, spec round-trip, validation."""

import numpy as np
import pytest

from repro.explore import DesignPoint, DesignSpace, DesignSpaceError


class TestEnumeration:
    def test_lexicographic_order_and_indexes(self):
        space = DesignSpace(
            bits=(4, 8),
            min_exps=(-7, -9),
            weight_modes=("deterministic",),
            num_pus=(1, 2),
            technologies=("65nm",),
        )
        points = space.points()
        assert len(points) == len(space) == 8
        assert [p.index for p in points] == list(range(8))
        # bits is the slowest axis, technologies the fastest
        assert [p.bits for p in points] == [4, 4, 4, 4, 8, 8, 8, 8]
        assert [p.min_exp for p in points[:4]] == [-7, -7, -9, -9]
        assert [p.num_pus for p in points[:4]] == [1, 2, 1, 2]

    def test_points_are_reproducible(self):
        space = DesignSpace()
        assert space.points() == space.points()

    def test_labels_are_unique(self):
        points = DesignSpace(
            bits=(4, 8), min_exps=(-7, -9), num_pus=(1, 2), technologies=("65nm", "28nm")
        ).points()
        assert len({p.label for p in points}) == len(points)

    def test_point_is_frozen(self):
        p = DesignSpace().points()[0]
        assert isinstance(p, DesignPoint)
        with pytest.raises(AttributeError):
            p.bits = 16


class TestSpecRoundTrip:
    def test_round_trip_identity(self):
        space = DesignSpace(
            bits=(4, 6, 8),
            min_exps=(-5, -7),
            weight_modes=("deterministic", "stochastic"),
            num_pus=(1, 2),
            technologies=("65nm", "45nm"),
        )
        assert DesignSpace.from_spec(space.spec()) == space
        assert DesignSpace.from_spec(space.spec()).points() == space.points()

    def test_spec_is_json_like(self):
        import json

        spec = DesignSpace().spec()
        assert json.loads(json.dumps(spec)) == spec

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(DesignSpaceError, match="dict"):
            DesignSpace.from_spec([1, 2])
        with pytest.raises(DesignSpaceError, match="missing axes"):
            DesignSpace.from_spec({"bits": [8]})


class TestValidation:
    def test_empty_axis_rejected(self):
        for axis in ("bits", "min_exps", "weight_modes", "num_pus", "technologies"):
            with pytest.raises(DesignSpaceError, match="empty"):
                DesignSpace(**{axis: ()})

    def test_out_of_range_bits_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace(bits=(0,))
        with pytest.raises(DesignSpaceError):
            DesignSpace(bits=(17,))

    def test_nonnegative_min_exp_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace(min_exps=(0,))
        with pytest.raises(DesignSpaceError):
            DesignSpace(min_exps=(-33,))

    def test_unknown_mode_and_technology_rejected(self):
        with pytest.raises(DesignSpaceError, match="weight mode"):
            DesignSpace(weight_modes=("nearest",))
        with pytest.raises(DesignSpaceError, match="technology"):
            DesignSpace(technologies=("7nm",))

    def test_duplicates_rejected(self):
        with pytest.raises(DesignSpaceError, match="duplicate"):
            DesignSpace(bits=(8, 8))
        with pytest.raises(DesignSpaceError, match="duplicate"):
            DesignSpace(technologies=("65nm", "65nm"))

    def test_non_integer_values_rejected(self):
        with pytest.raises(DesignSpaceError, match="integer"):
            DesignSpace(bits=(8.5,))
        with pytest.raises(DesignSpaceError, match="integer"):
            DesignSpace(num_pus=(True,))

    def test_numpy_integers_normalized(self):
        space = DesignSpace(bits=(np.int64(4), np.int64(8)))
        assert space.bits == (4, 8)
        assert all(type(b) is int for b in space.bits)
