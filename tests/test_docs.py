"""Docs freshness: README/docs code blocks must run, references must exist.

Two rot guards:

* every fenced ``python`` block in ``README.md`` and ``docs/*.md`` is
  executed (blocks within one document share a namespace, so later
  blocks may build on earlier ones);
* every repo-relative path these documents mention (``benchmarks/...``,
  ``examples/...``, ``docs/...``, ``src/repro/...``) must exist.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda p: p.name,
)

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_PATH = re.compile(r"\b((?:benchmarks|examples|docs|src/repro)/[\w./-]+\.(?:py|md))\b")


def _doc_ids():
    return [p.relative_to(REPO_ROOT).as_posix() for p in DOC_FILES]


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_docs_exist_and_have_content(doc):
    assert doc.is_file(), f"{doc} is missing"
    assert len(doc.read_text()) > 200


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_python_blocks_execute(doc):
    blocks = _FENCE.findall(doc.read_text())
    if not blocks:
        pytest.skip(f"{doc.name} has no python blocks")
    namespace: dict = {"__name__": "__docs__"}
    for i, block in enumerate(blocks):
        code = compile(block, f"{doc.name}[block {i}]", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own documentation


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_referenced_files_exist(doc):
    missing = sorted(
        {ref for ref in _PATH.findall(doc.read_text()) if not (REPO_ROOT / ref).exists()}
    )
    assert not missing, f"{doc.name} references missing files: {missing}"
