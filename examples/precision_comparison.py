#!/usr/bin/env python
"""Compare weight representations: the paper's argument in one script.

Runs the same trained network through four weight quantizers — binary
[14], ternary [12], 8-bit fixed point [9, 13], and the paper's
power-of-two scheme — and prices the corresponding datapaths with the
same 65 nm cost model.  The output shows the codesign sweet spot the
paper claims: power-of-two weights keep (nearly) fixed-point accuracy at
(nearly) binary hardware cost.
"""

import numpy as np

from repro.core.baselines import (
    BinaryWeightQuantizer,
    FixedPointWeightQuantizer,
    TernaryWeightQuantizer,
)
from repro.core.quantizer import NetworkQuantizer
from repro.datasets import cifar10_surrogate
from repro.hw.cost import CostModel
from repro.nn import SGD, PlateauScheduler, Trainer, error_rate
from repro.zoo import cifar10_small


def main():
    print("== training the float reference ==")
    train, test = cifar10_surrogate(n_train=1500, n_test=400, size=16, noise=0.7, seed=6)
    net = cifar10_small(size=16, rng=np.random.default_rng(0))
    optimizer = SGD(net.params, lr=0.02, momentum=0.9)
    Trainer(
        net, optimizer, scheduler=PlateauScheduler(optimizer, patience=2), batch_size=32
    ).fit(train, test, epochs=15)
    float_err = error_rate(net, test)
    calib = train.x[:256]

    schemes = [
        ("float (32-bit)", None, "fp32"),
        ("fixed8 weights", lambda: FixedPointWeightQuantizer(bits=8), "fixed8"),
        ("pow2 (paper)", None, "mfdfp"),  # default factory = Pow2
        ("ternary", TernaryWeightQuantizer, None),
        ("binary", BinaryWeightQuantizer, None),
    ]
    model = CostModel()
    print("\n== accuracy (no fine-tuning) and datapath cost ==")
    print(f"{'scheme':<16} {'error':>8} {'area mm^2':>10} {'power mW':>10}")
    for label, factory, hw in schemes:
        if label.startswith("float"):
            err = float_err
        else:
            clone = net.clone()
            NetworkQuantizer(weight_quantizer_factory=factory).quantize(clone, calib)
            err = error_rate(clone, test)
        if hw is not None:
            b = model.evaluate(hw, 1)
            print(f"{label:<16} {err:>8.4f} {b.area_mm2:>10.2f} {b.power_mw:>10.2f}")
        else:
            print(f"{label:<16} {err:>8.4f} {'~mfdfp':>10} {'~mfdfp':>10}")
    print(
        "\nreading: pow2 stays near fixed8/float accuracy while its datapath"
        "\n(shift-based, 1.94 mm^2) costs least — the codesign sweet spot."
    )


if __name__ == "__main__":
    main()
