#!/usr/bin/env python
"""Phase 3: an ensemble of two MF-DFP networks vs the float network.

Reproduces the structure of Table 2: the two-member MF-DFP ensemble
should match or beat the float network's accuracy while consuming ~80%
less energy on the two-PU accelerator.
"""

import numpy as np

from repro.core import MFDFPConfig, build_mfdfp_ensemble
from repro.datasets import cifar10_surrogate
from repro.hw import Accelerator, AcceleratorConfig
from repro.nn import SGD, PlateauScheduler, Trainer, error_rate
from repro.zoo import cifar10_full, cifar10_small


def train_float_net(train, test, seed):
    net = cifar10_small(size=16, rng=np.random.default_rng(seed))
    optimizer = SGD(net.params, lr=0.02, momentum=0.9)
    trainer = Trainer(
        net,
        optimizer,
        scheduler=PlateauScheduler(optimizer, patience=2),
        batch_size=32,
        rng=np.random.default_rng(seed + 100),
    )
    trainer.fit(train, test, epochs=15)
    return net


def main():
    train, test = cifar10_surrogate(n_train=1500, n_test=400, size=16, noise=0.7, seed=4)

    print("== training two float networks from different starting points ==")
    nets = [train_float_net(train, test, seed) for seed in (1, 2)]
    float_accs = [1 - error_rate(n, test) for n in nets]
    print(f"float accuracies: {[f'{a:.4f}' for a in float_accs]}")

    print("\n== Algorithm 1 on each starting network (Phase 1 + 2 + 3) ==")
    config = MFDFPConfig(phase1_epochs=6, phase2_epochs=6, lr=5e-3, batch_size=32)
    ensemble, results = build_mfdfp_ensemble(
        [n.clone() for n in nets], train, test, train.x[:256], config
    )
    member_accs = [1 - r.final_val_error for r in results]
    ens_acc = ensemble.accuracy(test)
    print(f"MF-DFP member accuracies: {[f'{a:.4f}' for a in member_accs]}")
    print(f"ensemble accuracy:        {ens_acc:.4f}  (best float: {max(float_accs):.4f})")

    print("\n== energy accounting on the full-size cifar10_full topology ==")
    hw_net = cifar10_full()
    fp32 = Accelerator(AcceleratorConfig(precision="fp32"))
    single = Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=1))
    double = Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=2))
    e_fp = fp32.energy_uj(hw_net)
    e_single = single.energy_uj(hw_net)
    e_double = double.energy_uj(hw_net)
    print(f"{'design':<22} {'time (us)':>10} {'energy (uJ)':>12} {'saving':>8}")
    print(f"{'FP32 baseline':<22} {fp32.latency_us(hw_net):>10.2f} {e_fp:>12.2f} {'-':>8}")
    print(
        f"{'single MF-DFP':<22} {single.latency_us(hw_net):>10.2f} {e_single:>12.2f} "
        f"{100 * (1 - e_single / e_fp):>7.1f}%"
    )
    print(
        f"{'ensemble (2 PUs)':<22} {double.latency_us(hw_net):>10.2f} {e_double:>12.2f} "
        f"{100 * (1 - e_double / e_fp):>7.1f}%"
    )
    print("\npaper reference: single saves 89.81%, ensemble saves 80.17% (Table 2)")


if __name__ == "__main__":
    main()
