#!/usr/bin/env python
"""A tour of the hardware accelerator model (Section 5 of the paper).

No training involved — this example inspects the accelerator itself:

* the bit-accurate multiplier-free neuron (shift products, widening
  adder tree, accumulator & routing),
* area/power breakdowns of the three designs (Table 1),
* per-layer cycle schedules of cifar10_full and AlexNet (Table 2's time
  column), and
* parameter-memory accounting (Table 3).
"""

import numpy as np

from repro.hw import Accelerator, AcceleratorConfig, Neuron, TileScheduler
from repro.hw.cost import CostModel
from repro.report import format_table, memory_report, table1_rows
from repro.zoo import alexnet, cifar10_full


def neuron_demo():
    print("=== a single multiplier-free neuron (Figure 2a) ===")
    rng = np.random.default_rng(0)
    neuron = Neuron()
    x_codes = rng.integers(-127, 128, size=16)
    w_sign = rng.choice([-1, 1], size=16)
    w_exp = rng.integers(-7, 1, size=16)
    m, n = 4, 4
    out = neuron.compute_output(x_codes, w_sign, w_exp, bias_int=0, m=m, n=n, activation="relu")
    x_real = x_codes * 2.0**-m
    w_real = w_sign * np.exp2(w_exp.astype(float))
    ref = max((x_real * w_real).sum(), 0.0)
    print(f"16 inputs (codes, m={m}): {x_codes.tolist()}")
    print(f"16 weights (s*2^e):      {w_real.tolist()}")
    print(f"neuron output code (n={n}): {out}  -> value {out * 2.0 ** -n:.4f}")
    print(f"float reference:            {ref:.4f} (quantizes to the same code)")


def cost_breakdown():
    print("\n=== Table 1: design metrics ===")
    print(format_table(table1_rows()))
    print("\narea composition of the MF-DFP design:")
    breakdown = CostModel().evaluate("mfdfp", 1)
    for name, fraction in sorted(
        breakdown.item_area_fraction().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name:<22} {100 * fraction:5.1f}%")


def schedules():
    print("\n=== per-layer schedules (250 MHz, 16x16 tile) ===")
    scheduler = TileScheduler(clock_mhz=250.0, pipeline_depth=4)
    for net in (cifar10_full(), alexnet()):
        schedule = scheduler.schedule_network(net)
        print(f"\n{net.name}: {schedule.total_cycles} cycles = {schedule.time_us():.2f} us, "
              f"utilization {100 * schedule.utilization():.1f}%")
        print(f"  {'layer':<8} {'kind':<8} {'cycles':>10} {'MACs':>12}")
        for layer in schedule.layers:
            print(f"  {layer.name:<8} {layer.kind:<8} {layer.cycles:>10} {layer.macs:>12}")


def memory():
    print("\n=== Table 3: parameter memory ===")
    for net in (cifar10_full(), alexnet()):
        report = memory_report(net)
        print(
            f"{report.network:<14} {report.parameters:>10} params | "
            f"float {report.float_mb:8.4f} MB | MF-DFP {report.mfdfp_mb:8.4f} MB | "
            f"ensemble {report.ensemble_mb:8.4f} MB"
        )


def energy():
    print("\n=== energy per inference (power x latency, as in the paper) ===")
    designs = [
        ("FP32 baseline", AcceleratorConfig(precision="fp32")),
        ("MF-DFP", AcceleratorConfig(precision="mfdfp")),
        ("MF-DFP ensemble", AcceleratorConfig(precision="mfdfp", num_pus=2)),
    ]
    for net in (cifar10_full(), alexnet()):
        print(f"\n{net.name}:")
        for label, config in designs:
            acc = Accelerator(config)
            print(
                f"  {label:<16} {acc.latency_us(net):>10.2f} us  "
                f"{acc.energy_uj(net):>10.2f} uJ"
            )


if __name__ == "__main__":
    neuron_demo()
    cost_breakdown()
    schedules()
    memory()
    energy()
