#!/usr/bin/env python
"""Full Algorithm 1 on the CIFAR-10 surrogate, with Figure-3 curves.

Runs both fine-tuning strategies the paper compares in Figure 3 —
hard-labels-only (Phase 1) and student-teacher (Phase 2) — from the same
quantized starting point, and writes the error-rate series to
``figure3_curves.csv`` next to this script.

Pass a directory containing the real CIFAR-10 binary batches as the first
argument to run on real data instead of the surrogate.
"""

import csv
import sys
from pathlib import Path

import numpy as np

from repro.core import MFDFPConfig, MFDFPNetwork, phase1_finetune, phase2_distill
from repro.datasets import cifar10_surrogate, load_real_cifar10
from repro.nn import SGD, PlateauScheduler, Trainer, error_rate
from repro.zoo import cifar10_full, cifar10_small


def load_data(argv):
    if len(argv) > 1:
        print(f"loading real CIFAR-10 from {argv[1]}")
        train, test = load_real_cifar10(argv[1])
        return train, test, cifar10_full(rng=np.random.default_rng(0))
    print("using the CIFAR-10 surrogate (pass a data dir for real CIFAR-10)")
    train, test = cifar10_surrogate(n_train=1500, n_test=400, size=16, noise=0.7, seed=2)
    return train, test, cifar10_small(size=16, rng=np.random.default_rng(0))


def main(argv):
    train, test, net = load_data(argv)

    print("== training the float teacher ==")
    optimizer = SGD(net.params, lr=0.02, momentum=0.9)
    trainer = Trainer(
        net, optimizer, scheduler=PlateauScheduler(optimizer, patience=2), batch_size=32
    )
    trainer.fit(train, test, epochs=15)
    float_err = error_rate(net, test)
    print(f"float error: {float_err:.4f}")

    config = MFDFPConfig(phase1_epochs=8, phase2_epochs=8, lr=5e-3, batch_size=32)
    calib = train.x[:256]

    print("\n== branch A: labels-only fine-tuning (Phase 1 continued) ==")
    labels_net = MFDFPNetwork.from_float(net.clone(), calib)
    curve_a = phase1_finetune(labels_net, train, test, config).val_errors
    curve_a += phase1_finetune(labels_net, train, test, config).val_errors
    print(f"labels-only final error: {curve_a[-1]:.4f}")

    print("\n== branch B: Phase 1 then student-teacher (Phase 2) ==")
    st_net = MFDFPNetwork.from_float(net.clone(), calib)
    curve_b = phase1_finetune(st_net, train, test, config).val_errors
    curve_b += phase2_distill(st_net, net, train, test, config).val_errors
    print(f"student-teacher final error: {curve_b[-1]:.4f}")

    out = Path(__file__).with_name("figure3_curves.csv")
    with open(out, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["epoch", "labels_only", "student_teacher", "float_baseline"])
        for i, (a, b) in enumerate(zip(curve_a, curve_b), 1):
            writer.writerow([i, f"{a:.4f}", f"{b:.4f}", f"{float_err:.4f}"])
    print(f"\nFigure-3 series written to {out}")
    print(
        f"summary: float {float_err:.4f} | labels-only {curve_a[-1]:.4f} | "
        f"student-teacher {curve_b[-1]:.4f}"
    )
    if curve_b[-1] <= curve_a[-1]:
        print("student-teacher training matched or beat labels-only (as in the paper)")


if __name__ == "__main__":
    main(sys.argv)
