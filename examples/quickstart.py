#!/usr/bin/env python
"""Quickstart: float training -> MF-DFP quantization -> accelerator run.

Runs in well under a minute on a laptop.  It walks the whole pipeline of
the paper at reduced scale:

1. train a small float CNN on the CIFAR-10 surrogate,
2. convert it to an 8-bit dynamic fixed-point network with power-of-two
   weights (Algorithm 1, Phase 1 fine-tuning included),
3. deploy it and run bit-accurate inference on the multiplier-free
   accelerator model,
4. print accuracy, latency, energy, and memory side by side.
"""

import numpy as np

from repro.core import MFDFPConfig, MFDFPNetwork, phase1_finetune
from repro.datasets import cifar10_surrogate
from repro.hw import Accelerator, AcceleratorConfig
from repro.nn import SGD, PlateauScheduler, Trainer, error_rate
from repro.report import memory_report
from repro.zoo import cifar10_small


def main():
    rng = np.random.default_rng(0)
    print("=== 1. train a float network on the CIFAR-10 surrogate ===")
    train, test = cifar10_surrogate(n_train=1500, n_test=400, size=16, noise=0.6, seed=1)
    net = cifar10_small(size=16, rng=rng)
    optimizer = SGD(net.params, lr=0.02, momentum=0.9)
    trainer = Trainer(
        net, optimizer, scheduler=PlateauScheduler(optimizer, patience=2), batch_size=32
    )
    trainer.fit(train, test, epochs=12)
    float_err = error_rate(net, test)
    print(f"float test error: {float_err:.3f}")

    print("\n=== 2. quantize to MF-DFP and fine-tune (Algorithm 1, Phase 1) ===")
    mfdfp = MFDFPNetwork.from_float(net.clone(), train.x[:256])
    print(f"raw quantized error:  {error_rate(mfdfp.net, test):.3f}")
    config = MFDFPConfig(phase1_epochs=6, lr=5e-3, batch_size=32)
    phase1_finetune(mfdfp, train, test, config)
    quant_err = error_rate(mfdfp.net, test)
    print(f"fine-tuned error:     {quant_err:.3f}  (float was {float_err:.3f})")
    print("per-layer fraction lengths:", mfdfp.plan.fraction_lengths())

    print("\n=== 3. deploy and run on the multiplier-free accelerator ===")
    deployed = mfdfp.deploy()
    accel = Accelerator(AcceleratorConfig(precision="mfdfp"))
    logits = accel.run(deployed, test.x[:200])
    hw_err = 1.0 - float((logits.argmax(1) == test.y[:200]).mean())
    print(f"bit-accurate hardware inference error: {hw_err:.3f}")

    print("\n=== 4. hardware metrics vs the FP32 baseline ===")
    baseline = Accelerator(AcceleratorConfig(precision="fp32"))
    float_net = mfdfp.net
    report = memory_report(float_net)
    rows = [
        ("", "FP32 baseline", "MF-DFP"),
        ("area (mm^2)", f"{baseline.area_mm2:.2f}", f"{accel.area_mm2:.2f}"),
        ("power (mW)", f"{baseline.power_mw:.2f}", f"{accel.power_mw:.2f}"),
        ("latency (us)", f"{baseline.latency_us(float_net):.2f}", f"{accel.latency_us(deployed):.2f}"),
        ("energy (uJ)", f"{baseline.energy_uj(float_net):.3f}", f"{accel.energy_uj(deployed):.3f}"),
        ("weights (MB)", f"{report.float_mb:.4f}", f"{report.mfdfp_mb:.4f}"),
    ]
    for label, a, b in rows:
        print(f"{label:>14}  {a:>14}  {b:>14}")
    saving = 1 - accel.energy_uj(deployed) / baseline.energy_uj(float_net)
    print(f"\nenergy saving: {100 * saving:.1f}%  (paper: ~89.8%)")


if __name__ == "__main__":
    main()
